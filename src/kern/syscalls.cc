// Handlers for the trivial, short and long syscalls, plus the two non-IPC
// multi-stage calls (cond_wait, region_search).
//
// Register conventions (see src/api/abi.h): entrypoint in A; arguments in
// B, C, D, SI, DI; result code in A; secondary result in B.
//
// Commit discipline: before any await that can suspend, the registers hold
// a consistent restart point. Short calls restart from scratch (they are
// idempotent up to their single side effect, which is performed at the
// end); cond_wait commits its registers to mutex_lock before sleeping
// (paper section 4.3); region_search advances its (addr, len) parameters
// as it scans.

#include <algorithm>
#include <cassert>

#include "src/kern/ipc.h"
#include "src/kern/kernel.h"
#include "src/kern/syscall_table.h"

namespace fluke {

namespace {

uint32_t& RegA(SysCtx& c) { return c.thread->regs.gpr[kRegA]; }
uint32_t& RegB(SysCtx& c) { return c.thread->regs.gpr[kRegB]; }
uint32_t& RegC(SysCtx& c) { return c.thread->regs.gpr[kRegC]; }
uint32_t& RegD(SysCtx& c) { return c.thread->regs.gpr[kRegD]; }
uint32_t& RegSI(SysCtx& c) { return c.thread->regs.gpr[kRegSI]; }
uint32_t& RegDI(SysCtx& c) { return c.thread->regs.gpr[kRegDI]; }

// Reads/writes a word array in the caller's space, resolving faults
// (restartable: the whole short syscall re-runs after a hard fault).
KTask ReadUserWords(SysCtx& ctx, uint32_t addr, uint32_t* out, uint32_t n) {
  Thread* t = ctx.thread;
  for (uint32_t i = 0; i < n;) {
    uint32_t fa = 0;
    if (t->space->ReadWord(addr + 4 * i, &out[i], &fa)) {
      ++i;
      continue;
    }
    KStatus s = co_await ResolveFault(ctx, t->space, fa, /*is_write=*/false, kFaultSideClient,
                                      /*count_ipc=*/false, 0);
    if (s != KStatus::kOk) {
      co_return s;
    }
  }
  co_return KStatus::kOk;
}

KTask WriteUserWords(SysCtx& ctx, uint32_t addr, const uint32_t* in, uint32_t n) {
  Thread* t = ctx.thread;
  for (uint32_t i = 0; i < n;) {
    uint32_t fa = 0;
    if (t->space->WriteWord(addr + 4 * i, in[i], &fa)) {
      ++i;
      continue;
    }
    KStatus s = co_await ResolveFault(ctx, t->space, fa, /*is_write=*/true, kFaultSideClient,
                                      /*count_ipc=*/false, 0);
    if (s != KStatus::kOk) {
      co_return s;
    }
  }
  co_return KStatus::kOk;
}

}  // namespace

// ---------------------------------------------------------------------------
// Trivial syscalls: run to completion, never block, never fault.
// ---------------------------------------------------------------------------

KTask SysNull(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.trivial_body);
  k.Finish(ctx.thread, kFlukeOk);
  co_return KStatus::kOk;
}

KTask SysThreadSelf(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.trivial_body);
  k.FinishWith(ctx.thread, kFlukeOk, ctx.thread->self_handle);
  co_return KStatus::kOk;
}

KTask SysSpaceSelf(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.trivial_body);
  k.FinishWith(ctx.thread, kFlukeOk, ctx.thread->space->self_handle);
  co_return KStatus::kOk;
}

KTask SysClockGet(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.trivial_body);
  k.FinishWith(ctx.thread, kFlukeOk, static_cast<uint32_t>(k.clock.now() / kNsPerUs));
  co_return KStatus::kOk;
}

KTask SysCpuId(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.trivial_body);
  k.FinishWith(ctx.thread, kFlukeOk, static_cast<uint32_t>(ctx.thread->home_cpu));
  co_return KStatus::kOk;
}

KTask SysPageSize(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.trivial_body);
  k.FinishWith(ctx.thread, kFlukeOk, kPageSize);
  co_return KStatus::kOk;
}

KTask SysApiVersion(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.trivial_body);
  k.FinishWith(ctx.thread, kFlukeOk, 19990222);  // OSDI '99
  co_return KStatus::kOk;
}

KTask SysRandomGet(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.trivial_body);
  k.FinishWith(ctx.thread, kFlukeOk, k.rng.Next32());
  co_return KStatus::kOk;
}

// Fast-path twin of the eight trivial handlers above: performs the same
// register effects, the same charges (trivial_body here; the dispatcher
// already charged syscall_entry) and the same frame accounting -- the frame
// the slow path would have allocated is probed once per entrypoint and
// accounted synthetically so Table 7 stays bit-identical -- without creating
// a coroutine. Safe in every configuration: trivial handlers never block,
// never fault and take no locks.
bool FastTrivial(Kernel& k, Thread* t, const SyscallDef& def) {
  static size_t frame_bytes[kSysCount] = {};
  size_t& fsz = frame_bytes[def.num];
  if (fsz == 0) {
    fsz = ProbeFrameSize(def.handler);
  }
  t->op_sys = def.num;
  t->op_aux = def.aux;
  k.AccountFrameAlloc(t, fsz);
  k.Charge(k.costs.trivial_body);
  switch (def.num) {
    case kSysNull:
      k.Finish(t, kFlukeOk);
      break;
    case kSysThreadSelf:
      k.FinishWith(t, kFlukeOk, t->self_handle);
      break;
    case kSysSpaceSelf:
      k.FinishWith(t, kFlukeOk, t->space->self_handle);
      break;
    case kSysClockGet:
      k.FinishWith(t, kFlukeOk, static_cast<uint32_t>(k.clock.now() / kNsPerUs));
      break;
    case kSysCpuId:
      k.FinishWith(t, kFlukeOk, static_cast<uint32_t>(t->home_cpu));
      break;
    case kSysPageSize:
      k.FinishWith(t, kFlukeOk, kPageSize);
      break;
    case kSysApiVersion:
      k.FinishWith(t, kFlukeOk, 19990222);
      break;
    case kSysRandomGet:
      k.FinishWith(t, kFlukeOk, k.rng.Next32());
      break;
    default:
      // Not a trivial entrypoint; decline before any state was touched.
      k.AccountFrameFree(t, fsz);
      return false;
  }
  k.AccountFrameFree(t, fsz);
  uint64_t exit = k.costs.syscall_exit;
  if (k.cfg.model == ExecModel::kInterrupt) {
    exit += k.costs.interrupt_exit_extra;
  }
  k.Charge(exit);
  ++k.stats.syscall_fast_entries;
  return true;
}

// ---------------------------------------------------------------------------
// Common object operations (54 short syscalls; the object type arrives via
// the table's aux field in op_aux).
// ---------------------------------------------------------------------------

namespace {

KernelObject* LookupTyped(SysCtx& ctx, Handle h, ObjType want) {
  KernelObject* o = ctx.thread->space->Lookup(h);
  if (o == nullptr || o->type() != want) {
    return nullptr;
  }
  return o;
}

}  // namespace

// create() -> B = handle. thread_create takes B = space handle.
KTask SysObjCreate(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.object_create);
  if (k.finj.FailHandleAlloc()) {
    // Injected handle-table allocation failure: clean retryable error
    // before any object is constructed.
    k.Finish(t, kFlukeErrNoMemory);
    co_return KStatus::kOk;
  }
  const auto type = static_cast<ObjType>(t->op_aux);
  std::shared_ptr<KernelObject> obj;
  switch (type) {
    case ObjType::kMutex:
      obj = k.NewMutex();
      break;
    case ObjType::kCond:
      obj = k.NewCond();
      break;
    case ObjType::kPort:
      obj = k.NewPort(/*badge=*/RegC(ctx));
      break;
    case ObjType::kPortset:
      obj = k.NewPortset();
      break;
    case ObjType::kReference:
      obj = k.NewReference(nullptr);
      break;
    case ObjType::kRegion: {
      // region_create(C=base, D=size, SI=prot) over the caller's space.
      obj = k.NewRegion(t->space, RegC(ctx), RegD(ctx), RegSI(ctx) & kProtReadWrite);
      break;
    }
    case ObjType::kMapping: {
      // mapping_create(B=destination space handle, C=dst base, D=size,
      //                SI=region handle, DI=(offset_pages << 2) | prot).
      // Both handles resolve in the caller's space, so a manager can import
      // memory into a child space it holds a handle to.
      auto* sp = static_cast<Space*>(LookupTyped(ctx, RegB(ctx), ObjType::kSpace));
      auto* r = static_cast<Region*>(LookupTyped(ctx, RegSI(ctx), ObjType::kRegion));
      if (sp == nullptr || r == nullptr) {
        k.Finish(t, kFlukeErrBadHandle);
        co_return KStatus::kOk;
      }
      const uint32_t offset = (RegDI(ctx) >> 2) << kPageShift;
      obj = k.NewMapping(sp, RegC(ctx), r, offset, RegD(ctx), RegDI(ctx) & kProtReadWrite);
      break;
    }
    case ObjType::kSpace: {
      auto s = k.CreateSpace("user-space");
      obj = s;
      break;
    }
    case ObjType::kThread: {
      // thread_create(B = space handle) -> embryo thread in that space.
      auto* sp = static_cast<Space*>(LookupTyped(ctx, RegB(ctx), ObjType::kSpace));
      if (sp == nullptr) {
        k.Finish(t, kFlukeErrBadHandle);
        co_return KStatus::kOk;
      }
      Thread* nt = k.CreateThread(sp);
      // Hand the creator a handle too (distinct from nt->self_handle).
      const Handle h = t->space->Install(
          std::static_pointer_cast<KernelObject>(k.SharedThread(nt)));
      k.FinishWith(t, kFlukeOk, h);
      co_return KStatus::kOk;
    }
  }
  const Handle h = t->space->Install(obj);
  k.FinishWith(t, kFlukeOk, h);
  co_return KStatus::kOk;
}

// destroy(B = handle).
KTask SysObjDestroy(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.object_destroy);
  KernelObject* o = LookupTyped(ctx, RegB(ctx), static_cast<ObjType>(t->op_aux));
  if (o == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  k.DestroyObject(o);
  t->space->Uninstall(RegB(ctx));
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

// rename(B = handle, C = numeric tag): names the object "obj-<C>".
KTask SysObjRename(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  KernelObject* o = LookupTyped(ctx, RegB(ctx), static_cast<ObjType>(t->op_aux));
  if (o == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  o->set_name("obj-" + std::to_string(RegC(ctx)));
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

// reference(B = target handle, C = reference handle): points C at B
// ("point-a-reference-at", e.g. port_reference in the paper 4.3).
KTask SysObjReference(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  KernelObject* target = LookupTyped(ctx, RegB(ctx), static_cast<ObjType>(t->op_aux));
  KernelObject* refobj = t->space->Lookup(RegC(ctx));
  if (target == nullptr || refobj == nullptr || refobj->type() != ObjType::kReference) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  static_cast<Reference*>(refobj)->target = t->space->LookupShared(RegB(ctx));
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

namespace {

// Type-specific state serialization. Returns the word count (<= 16).
uint32_t SerializeState(Kernel& k, KernelObject* o, uint32_t out[16]) {
  switch (o->type()) {
    case ObjType::kMutex: {
      auto* m = static_cast<Mutex*>(o);
      out[0] = m->locked ? 1 : 0;
      out[1] = static_cast<uint32_t>(m->owner_tid);
      out[2] = static_cast<uint32_t>(m->owner_tid >> 32);
      return 3;
    }
    case ObjType::kCond: {
      out[0] = static_cast<uint32_t>(static_cast<Cond*>(o)->waiters.size());
      return 1;
    }
    case ObjType::kPort: {
      out[0] = static_cast<Port*>(o)->badge;
      return 1;
    }
    case ObjType::kPortset: {
      out[0] = static_cast<uint32_t>(static_cast<Portset*>(o)->ports.size());
      return 1;
    }
    case ObjType::kRegion: {
      auto* r = static_cast<Region*>(o);
      out[0] = r->base;
      out[1] = r->size;
      out[2] = r->prot;
      return 3;
    }
    case ObjType::kMapping: {
      auto* m = static_cast<Mapping*>(o);
      out[0] = m->base;
      out[1] = m->size;
      out[2] = m->offset;
      out[3] = m->prot;
      return 4;
    }
    case ObjType::kSpace: {
      auto* s = static_cast<Space*>(o);
      out[0] = static_cast<uint32_t>(s->mapped_pages());
      out[1] = 0;  // anon base (write-only through set_state)
      out[2] = 0;
      return 3;
    }
    case ObjType::kThread: {
      auto* t = static_cast<Thread*>(o);
      ThreadState s;
      if (!k.GetThreadState(t, &s)) {
        return 0;
      }
      ThreadStateToWords(s, out);
      return kThreadStateWords;
    }
    case ObjType::kReference: {
      auto* r = static_cast<Reference*>(o);
      out[0] = r->target != nullptr ? static_cast<uint32_t>(r->target->type()) : 0;
      out[1] = r->target != nullptr ? static_cast<uint32_t>(r->target->id()) : 0;
      return 2;
    }
  }
  return 0;
}

// Applies state words to an object. Returns a user error code.
uint32_t ApplyState(SysCtx& ctx, KernelObject* o, const uint32_t* in, uint32_t n) {
  Kernel& k = *ctx.kernel;
  switch (o->type()) {
    case ObjType::kMutex: {
      if (n < 3) {
        return kFlukeErrBadArgument;
      }
      auto* m = static_cast<Mutex*>(o);
      m->locked = in[0] != 0;
      m->owner_tid = static_cast<uint64_t>(in[1]) | (static_cast<uint64_t>(in[2]) << 32);
      return kFlukeOk;
    }
    case ObjType::kCond:
    case ObjType::kPortset:
    case ObjType::kReference:
      return kFlukeOk;  // no settable state
    case ObjType::kPort: {
      if (n < 1) {
        return kFlukeErrBadArgument;
      }
      static_cast<Port*>(o)->badge = in[0];
      return kFlukeOk;
    }
    case ObjType::kRegion: {
      if (n < 3) {
        return kFlukeErrBadArgument;
      }
      static_cast<Region*>(o)->prot = in[2] & kProtReadWrite;
      return kFlukeOk;
    }
    case ObjType::kMapping: {
      if (n < 4) {
        return kFlukeErrBadArgument;
      }
      static_cast<Mapping*>(o)->prot = in[3] & kProtReadWrite;
      return kFlukeOk;
    }
    case ObjType::kSpace: {
      // set_state(words): [keeper port handle (0 = keep), anon base,
      //                    anon size]. Handles resolve in the CALLER's
      //                    space, so a manager can arm a child space.
      auto* s = static_cast<Space*>(o);
      if (n >= 1 && in[0] != 0) {
        KernelObject* p = ctx.thread->space->Lookup(in[0]);
        if (p == nullptr || p->type() != ObjType::kPort) {
          return kFlukeErrBadHandle;
        }
        s->keeper = static_cast<Port*>(p);
      }
      if (n >= 3) {
        s->SetAnonRange(in[1], in[2]);
      }
      return kFlukeOk;
    }
    case ObjType::kThread: {
      if (n < kThreadStateWords) {
        return kFlukeErrBadArgument;
      }
      ThreadState s;
      ThreadStateFromWords(in, &s);
      return k.SetThreadState(static_cast<Thread*>(o), s) ? kFlukeOk : kFlukeErrBadArgument;
    }
  }
  return kFlukeErrBadType;
}

}  // namespace

// get_state(B = handle, C = buffer, D = capacity words) -> B = words written.
KTask SysObjGetState(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  KernelObject* o = LookupTyped(ctx, RegB(ctx), static_cast<ObjType>(t->op_aux));
  if (o == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  uint32_t words[16];
  const uint32_t n = SerializeState(k, o, words);
  if (n == 0 && o->type() == ObjType::kThread) {
    k.Finish(t, kFlukeErrWouldBlock);  // target is on-CPU (MP only)
    co_return KStatus::kOk;
  }
  if (RegD(ctx) < n) {
    k.Finish(t, kFlukeErrBadArgument);
    co_return KStatus::kOk;
  }
  KStatus s = co_await WriteUserWords(ctx, RegC(ctx), words, n);
  if (s != KStatus::kOk) {
    k.Finish(t, kFlukeErrBadAddress);
    co_return KStatus::kOk;
  }
  k.FinishWith(t, kFlukeOk, n);
  co_return KStatus::kOk;
}

// set_state(B = handle, C = buffer, D = words).
KTask SysObjSetState(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  KernelObject* o = LookupTyped(ctx, RegB(ctx), static_cast<ObjType>(t->op_aux));
  if (o == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  const uint32_t n = std::min<uint32_t>(RegD(ctx), 16);
  uint32_t words[16] = {};
  KStatus s = co_await ReadUserWords(ctx, RegC(ctx), words, n);
  if (s != KStatus::kOk) {
    k.Finish(t, kFlukeErrBadAddress);
    co_return KStatus::kOk;
  }
  k.Finish(t, ApplyState(ctx, o, words, n));
  co_return KStatus::kOk;
}

// ---------------------------------------------------------------------------
// Type-specific short syscalls.
// ---------------------------------------------------------------------------

KTask SysMutexTrylock(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* m = static_cast<Mutex*>(LookupTyped(ctx, RegB(ctx), ObjType::kMutex));
  if (m == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  if (m->locked) {
    k.Finish(t, kFlukeErrWouldBlock);
  } else {
    m->locked = true;
    m->owner_tid = t->id();
    k.Finish(t, kFlukeOk);
  }
  co_return KStatus::kOk;
}

KTask SysMutexUnlock(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* m = static_cast<Mutex*>(LookupTyped(ctx, RegB(ctx), ObjType::kMutex));
  if (m == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  if (!m->locked) {
    k.Finish(t, kFlukeErrBadArgument);
    co_return KStatus::kOk;
  }
  m->locked = false;
  m->owner_tid = 0;
  // Wake one waiter; it restarts mutex_lock and contends afresh.
  k.WakeOne(&m->waiters);
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

KTask SysCondSignal(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* c = static_cast<Cond*>(LookupTyped(ctx, RegB(ctx), ObjType::kCond));
  if (c == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  // The waiter's registers were committed to mutex_lock before it slept, so
  // waking it sends it straight to the lock acquisition.
  k.WakeOne(&c->waiters);
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

KTask SysCondBroadcast(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* c = static_cast<Cond*>(LookupTyped(ctx, RegB(ctx), ObjType::kCond));
  if (c == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  k.WakeAll(&c->waiters);
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

// region_protect(B = handle, C = prot).
KTask SysRegionProtect(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* r = static_cast<Region*>(LookupTyped(ctx, RegB(ctx), ObjType::kRegion));
  if (r == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  r->prot = RegC(ctx) & kProtReadWrite;
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

// region_info(B = handle) -> B = size (base via get_state).
KTask SysRegionInfo(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  auto* r = static_cast<Region*>(LookupTyped(ctx, RegB(ctx), ObjType::kRegion));
  if (r == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  k.FinishWith(t, kFlukeOk, r->size);
  co_return KStatus::kOk;
}

KTask SysMappingInfo(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  auto* m = static_cast<Mapping*>(LookupTyped(ctx, RegB(ctx), ObjType::kMapping));
  if (m == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  k.FinishWith(t, kFlukeOk, m->size);
  co_return KStatus::kOk;
}

// portset_add(B = portset, C = port).
KTask SysPortsetAdd(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* ps = static_cast<Portset*>(LookupTyped(ctx, RegB(ctx), ObjType::kPortset));
  KernelObject* po = t->space->Lookup(RegC(ctx));
  if (ps == nullptr || po == nullptr || po->type() != ObjType::kPort) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  auto* p = static_cast<Port*>(po);
  if (p->member_of != nullptr) {
    k.Finish(t, kFlukeErrBadArgument);
    co_return KStatus::kOk;
  }
  p->member_of = ps;
  ps->ports.push_back(p);
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

KTask SysPortsetRemove(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* ps = static_cast<Portset*>(LookupTyped(ctx, RegB(ctx), ObjType::kPortset));
  KernelObject* po = t->space->Lookup(RegC(ctx));
  if (ps == nullptr || po == nullptr || po->type() != ObjType::kPort) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  auto* p = static_cast<Port*>(po);
  if (p->member_of != ps) {
    k.Finish(t, kFlukeErrBadArgument);
    co_return KStatus::kOk;
  }
  p->member_of = nullptr;
  for (size_t i = 0; i < ps->ports.size(); ++i) {
    if (ps->ports[i] == p) {
      ps->ports.erase(ps->ports.begin() + i);
      break;
    }
  }
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

KTask SysThreadInterrupt(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* target = static_cast<Thread*>(LookupTyped(ctx, RegB(ctx), ObjType::kThread));
  if (target == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  k.InterruptThread(target);
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

KTask SysThreadResume(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* target = static_cast<Thread*>(LookupTyped(ctx, RegB(ctx), ObjType::kThread));
  if (target == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  k.ResumeThread(target);
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

// console_putc(B = byte).
KTask SysConsolePutc(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  k.Charge(k.costs.short_body);
  k.console.PutChar(static_cast<char>(RegB(ctx)));
  k.Finish(ctx.thread, kFlukeOk);
  co_return KStatus::kOk;
}

// ---------------------------------------------------------------------------
// Long syscalls: single-stage indefinite sleeps.
// ---------------------------------------------------------------------------

// Shared lock-acquisition loop (mutex_lock, and the relock half of
// cond_wait). The registers already name mutex_lock + handle, so every
// block point is a committed restart point.
KTask AcquireMutex(SysCtx& ctx, Mutex* m) {
  Thread* t = ctx.thread;
  for (;;) {
    if (!m->alive()) {
      co_return KStatus::kDead;
    }
    if (!m->locked) {
      m->locked = true;
      m->owner_tid = t->id();
      co_return KStatus::kOk;
    }
    co_await Block(ctx, &m->waiters);
    // (process model) woken by unlock: loop and contend again; the
    // interrupt model re-enters mutex_lock from the registers instead.
  }
}

KTask SysMutexLock(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* m = static_cast<Mutex*>(LookupTyped(ctx, RegB(ctx), ObjType::kMutex));
  if (m == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  KStatus s = co_await AcquireMutex(ctx, m);
  k.Finish(t, s == KStatus::kOk ? kFlukeOk : kFlukeErrDead);
  co_return KStatus::kOk;
}

// clock_sleep(B = microseconds).
KTask SysClockSleep(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  const Time dur = static_cast<Time>(RegB(ctx)) * kNsPerUs;
  const uint64_t token = ++t->sleep_token;
  k.ArmSleepTimer(t, k.clock.now() + dur, token);
  co_await Block(ctx, nullptr);
  // Only reached in the process model on a wake that did not complete the
  // op (cannot happen for sleep, but keep the op well-formed).
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

// thread_join(B = thread handle) -> B = exit code.
KTask SysThreadJoin(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  // Look up without the liveness filter: joining a dead thread is the
  // common completion path.
  KernelObject* o = t->space->LookupAnyState(RegB(ctx));
  if (o == nullptr || o->type() != ObjType::kThread) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  auto* target = static_cast<Thread*>(o);
  for (;;) {
    if (target->run_state == ThreadRun::kDead) {
      k.FinishWith(t, kFlukeOk, target->exit_code);
      co_return KStatus::kOk;
    }
    if (target->join_wait == nullptr) {
      target->join_wait = std::make_unique<WaitQueue>();
    }
    co_await Block(ctx, target->join_wait.get());
  }
}

KTask SysThreadStopSelf(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  // Commit completion first, then stop: on resume the thread continues
  // after the syscall with A == kFlukeOk.
  k.Finish(t, kFlukeOk);
  t->run_state = ThreadRun::kStopped;
  co_return KStatus::kOk;
}

// irq_wait(B = line): blocks until the line is raised. Used by user-mode
// drivers (and the Table 6 latency probe).
KTask SysIrqWait(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  const uint32_t line = RegB(ctx);
  if (line >= kNumIrqLines) {
    k.Finish(t, kFlukeErrBadArgument);
    co_return KStatus::kOk;
  }
  t->irq_line = static_cast<int>(line);
  co_await Block(ctx, &k.irq_waiters[line]);
  // Completed by the IRQ dispatch path (CompleteBlockedOp); reaching here
  // in the process model means the wait was satisfied.
  k.Finish(t, kFlukeOk);
  co_return KStatus::kOk;
}

// disk_wait() -> B = completed request id.
KTask SysDiskWait(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  for (;;) {
    uint64_t id = 0;
    if (k.disk.PopCompletion(&id)) {
      k.FinishWith(t, kFlukeOk, static_cast<uint32_t>(id));
      co_return KStatus::kOk;
    }
    co_await Block(ctx, &k.disk_waiters);
  }
}

// console_getc() -> B = byte.
KTask SysConsoleGetc(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  for (;;) {
    const int c = k.console.GetChar();
    if (c >= 0) {
      k.FinishWith(t, kFlukeOk, static_cast<uint32_t>(c));
      co_return KStatus::kOk;
    }
    co_await Block(ctx, &k.console_waiters);
  }
}

// portset_wait(B = portset/port handle) -> B = badge of a ready port.
// Waits without receiving (the receive is a separate entrypoint).
KTask SysPortsetWait(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  k.Charge(k.costs.short_body);
  for (;;) {
    KernelObject* o = t->space->Lookup(RegB(ctx));
    if (o == nullptr || (o->type() != ObjType::kPort && o->type() != ObjType::kPortset)) {
      k.Finish(t, kFlukeErrBadHandle);
      co_return KStatus::kOk;
    }
    auto ready_badge = [](KernelObject* obj) -> int64_t {
      auto port_ready = [](Port* p) {
        return !p->kmsgs.empty() || p->waiting_clients.Front() != nullptr;
      };
      if (obj->type() == ObjType::kPort) {
        auto* p = static_cast<Port*>(obj);
        return port_ready(p) ? static_cast<int64_t>(p->badge) : int64_t{-1};
      }
      for (Port* p : static_cast<Portset*>(obj)->ports) {
        if (p->alive() && port_ready(p)) {
          return static_cast<int64_t>(p->badge);
        }
      }
      return int64_t{-1};
    };
    const int64_t badge = ready_badge(o);
    if (badge >= 0) {
      k.FinishWith(t, kFlukeOk, static_cast<uint32_t>(badge));
      co_return KStatus::kOk;
    }
    WaitQueue* q = o->type() == ObjType::kPort ? &static_cast<Port*>(o)->pollers
                                               : &static_cast<Portset*>(o)->pollers;
    co_await Block(ctx, q);
  }
}

// ---------------------------------------------------------------------------
// Non-IPC multi-stage syscalls.
// ---------------------------------------------------------------------------

// cond_wait(B = cond handle, C = mutex handle). Two stages: the wait, then
// the relock -- committed as mutex_lock before sleeping (paper 4.3).
KTask SysCondWait(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  auto* c = static_cast<Cond*>(LookupTyped(ctx, RegB(ctx), ObjType::kCond));
  auto* m = static_cast<Mutex*>(LookupTyped(ctx, RegC(ctx), ObjType::kMutex));
  if (c == nullptr || m == nullptr) {
    k.Finish(t, kFlukeErrBadHandle);
    co_return KStatus::kOk;
  }
  if (!m->locked) {
    k.Finish(t, kFlukeErrBadArgument);
    co_return KStatus::kOk;
  }
  // Release the mutex.
  m->locked = false;
  m->owner_tid = 0;
  k.WakeOne(&m->waiters);
  // COMMIT: if this thread is interrupted or woken it will retry the mutex
  // lock, not the whole condition wait.
  RegA(ctx) = kSysMutexLock;
  RegB(ctx) = RegC(ctx);
  co_await Block(ctx, &c->waiters);
  // (process model) signalled: reacquire the mutex mid-handler. The
  // interrupt model re-enters mutex_lock from the rewritten registers.
  KStatus s = co_await AcquireMutex(ctx, m);
  k.Finish(t, s == KStatus::kOk ? kFlukeOk : kFlukeErrDead);
  co_return KStatus::kOk;
}

// region_search(B = start address, C = length) -> B = region object id, or
// error kFlukeErrNotFound. Multi-stage: B/C advance as pages are scanned,
// so the operation can be interrupted and restarted at page granularity.
// There is NO explicit preemption point here (the paper adds one only to
// the IPC copy path), which is what gives the PP configurations their
// residual max latency in Table 6.
KTask SysRegionSearch(SysCtx& ctx) {
  Kernel& k = *ctx.kernel;
  Thread* t = ctx.thread;
  KLockGuard lock(ctx);
  k.Charge(k.costs.short_body);
  while (RegC(ctx) > 0) {
    ++k.stats.region_pages_scanned;
    const uint32_t addr = RegB(ctx);
    // Scan this page against the space's exported regions.
    for (Region* r : t->space->regions) {
      if (r->alive() && addr - r->base < r->size) {
        k.FinishWith(t, kFlukeOk, static_cast<uint32_t>(r->id()));
        co_return KStatus::kOk;
      }
    }
    co_await Work(ctx, k.costs.region_search_per_page);
    const uint32_t step = std::min(RegC(ctx), kPageSize - (addr & kPageMask));
    // COMMIT: advance the scan parameters in place.
    RegB(ctx) += step;
    RegC(ctx) -= step;
  }
  k.FinishWith(t, kFlukeErrNotFound, 0);
  co_return KStatus::kOk;
}

}  // namespace fluke
