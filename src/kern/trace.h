// Kernel event tracing.
//
// A fixed-capacity ring buffer of timestamped kernel events (syscall
// entry/exit, context switches, blocks/wakes, faults, preemptions). Off by
// default and costless when off; the fluke_run CLI exposes it as --trace
// and tests use it to assert on event sequences. Dump() renders a
// human-readable log.

#ifndef SRC_KERN_TRACE_H_
#define SRC_KERN_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hal/clock.h"

namespace fluke {

enum class TraceKind : uint8_t {
  kSyscallEnter = 0,
  kSyscallExit,
  kSyscallRestart,  // interrupt-model re-entry of a blocked op
  kContextSwitch,
  kBlock,
  kWake,
  kSoftFault,
  kHardFault,
  kPreempt,  // kernel preemption (PP point or FP quantum)
  kThreadExit,
};

const char* TraceKindName(TraceKind k);

struct TraceEvent {
  Time when = 0;
  TraceKind kind = TraceKind::kSyscallEnter;
  uint64_t thread_id = 0;
  uint32_t a = 0;  // kind-specific: syscall number, fault address, ...
  uint32_t b = 0;  // kind-specific: result, block kind, ...
};

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 4096) : capacity_(capacity) {}

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Record(Time when, TraceKind kind, uint64_t tid, uint32_t a = 0, uint32_t b = 0) {
    if (!enabled_) {
      return;
    }
    if (events_.size() < capacity_) {
      events_.push_back(TraceEvent{when, kind, tid, a, b});
    } else {
      events_[next_ % capacity_] = TraceEvent{when, kind, tid, a, b};
    }
    ++next_;
  }

  // Events in chronological order (oldest first; the ring may have dropped
  // earlier ones).
  std::vector<TraceEvent> Snapshot() const;

  // Number of events ever recorded (including overwritten ones).
  uint64_t total_recorded() const { return next_; }
  size_t size() const { return events_.size(); }
  void Clear() {
    events_.clear();
    next_ = 0;
  }

  // Renders the snapshot as one line per event.
  std::string Dump() const;

 private:
  size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  uint64_t next_ = 0;
};

}  // namespace fluke

#endif  // SRC_KERN_TRACE_H_
