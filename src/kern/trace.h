// Kernel event tracing: causal spans, flows, and point events.
//
// A fixed-capacity power-of-two ring buffer of timestamped kernel events.
// Three event shapes share one record type:
//
//   * Point events ("instants"): Record() -- context switches, faults,
//     IPC chunks, page lends, fault injections, checkpoints.
//   * Spans: BeginSpan()/EndSpan() bracket an interval on one thread's
//     timeline (syscall lifetime, block->wake, fault remedy, idle). Span
//     ids are assigned monotonically and are never reused, so a Begin/End
//     pair is linked by id even after the ring wraps away one side.
//   * Flows: Flow() emits a FlowOut on the causing thread and a FlowIn on
//     the woken thread at the same timestamp, sharing a flow id -- this is
//     how an IPC send span is linked to the matching receive completion
//     across threads in the exported trace.
//
// Off by default and costless when off: every entry point checks enabled_
// first, and the dispatcher only reaches the hook sites at all in its
// Instrumented instantiation (see dispatch.cc). Tracing alone does NOT
// force the coroutine slow path: the fast-path handlers carry the same
// span/flow hooks as the engine route, so a trace-only armed run keeps the
// direct-handoff and trivial-completion fast paths (what makes the stream
// affordable at c1m scale). Fault plans and checkpointing still force the
// slow path. The stream is bit-identical across both interpreter engines
// and across serial/parallel MP backends -- tests assert equality of the
// FNV-1a digest over the stream (src/kern/profile.h).
//
// An optional TraceSink observes every pushed event in stream order; the
// binary writer (src/kern/trace_binary.h) attaches here so a full-fidelity
// stream can outlive the ring on c1m-scale runs.
//
// The fluke_run CLI exposes the tracer as --trace (human-readable Dump()),
// --trace-out=FILE (Chrome/Perfetto JSON, src/kern/trace_export.h) and
// --trace-bin=FILE (compact binary, src/kern/trace_binary.h).

#ifndef SRC_KERN_TRACE_H_
#define SRC_KERN_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hal/clock.h"

namespace fluke {

enum class TraceKind : uint8_t {
  kSyscallEnter = 0,  // span: syscall lifetime (a=sys, b=1 for a restart epoch)
  kSyscallExit,       // span end (a=sys, b=result; 0xFFFFFFFF = cancelled)
  kSyscallRestart,    // instant: interrupt-model re-entry of a blocked op
  kContextSwitch,
  kBlock,  // span begin: block->wake (a=sys, b=block kind)
  kWake,   // span end of kBlock (b: 0=woken, 1=cancelled, 2=thread exit)
  kSoftFault,
  kHardFault,
  kPreempt,  // kernel preemption (PP point or FP quantum)
  kThreadExit,
  // --- Added with the observability layer (PR 5) ---
  kIpcChunk,        // instant: one IPC transfer chunk committed (a=words)
  kIpcPageLend,     // instant: whole-page CoW lend instead of copy (a=src va)
  kIpcFastHandoff,  // instant: direct-handoff fast path committed a send
  kFaultInject,     // instant: injector fired (a: 0=extract, 1=crash, 2=connect)
  kCheckpoint,      // instant: space captured (b=0) or restored (b=1)
  kFaultRemedy,     // span: fault remedy (a=addr; end b: 0=soft, 2=hard, ...)
  kIdle,            // span on tid 0: no runnable thread, clock advancing
  kIpcFlow,         // flow out/in pair: causal wake (IPC handoff etc.)
  // --- Added with incremental checkpointing (PR 8) ---
  kCkptMark,   // instant: mark phase flipped a space's pages (a=space, b=pages)
  kCkptDrain,  // instant: drain tick captured owed pages (a=pages, b=left)
  kCkptSave,   // instant: save-on-write captured a page (a=space, b=pagenum)
};

const char* TraceKindName(TraceKind k);

// Phase of a record, mirroring the Chrome trace_event phases the exporter
// maps onto (B/E slices, s/f flows, i instants).
enum class TracePhase : uint8_t {
  kInstant = 0,
  kBegin,
  kEnd,
  kFlowOut,
  kFlowIn,
};

struct TraceEvent {
  Time when = 0;
  uint64_t span_id = 0;  // span id (Begin/End) or flow id (FlowOut/FlowIn)
  uint64_t thread_id = 0;
  TraceKind kind = TraceKind::kSyscallEnter;
  TracePhase phase = TracePhase::kInstant;
  uint32_t a = 0;  // kind-specific: syscall number, fault address, ...
  uint32_t b = 0;  // kind-specific: result, block kind, ...
};

// Observes every event pushed into an enabled TraceBuffer, in stream order
// (exactly the order and fields the ring stores, before any wrap loss).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& e) = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 4096) { SetCapacity(capacity); }

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Rounds up to a power of two (so the ring index is a mask, and wrap
  // order stays exact) and clears the buffer. Minimum 2.
  void SetCapacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  // Point event.
  void Record(Time when, TraceKind kind, uint64_t tid, uint32_t a = 0, uint32_t b = 0) {
    if (!enabled_) {
      return;
    }
    Push(when, kind, TracePhase::kInstant, 0, tid, a, b);
  }

  // Opens a span and returns its id (monotonic, nonzero). Returns 0 when
  // tracing is off -- callers store the id and EndSpan() ignores id 0, so
  // span bracketing needs no enabled() checks of its own.
  uint64_t BeginSpan(Time when, TraceKind kind, uint64_t tid, uint32_t a = 0, uint32_t b = 0) {
    if (!enabled_) {
      return 0;
    }
    const uint64_t id = ++last_span_id_;
    Push(when, kind, TracePhase::kBegin, id, tid, a, b);
    return id;
  }

  void EndSpan(Time when, TraceKind kind, uint64_t span_id, uint64_t tid, uint32_t a = 0,
               uint32_t b = 0) {
    if (!enabled_ || span_id == 0) {
      return;
    }
    Push(when, kind, TracePhase::kEnd, span_id, tid, a, b);
  }

  // Causal link: emits a FlowOut on `from_tid` and a FlowIn on `to_tid` at
  // the same timestamp with a shared flow id. Returns the id (0 when off).
  // `a` carries a kind-specific flag on both halves (the kernel passes 1
  // when the wake crosses CPUs, 0 otherwise -- see Kernel::TraceFlowTo).
  uint64_t Flow(Time when, uint64_t from_tid, uint64_t to_tid, uint32_t a = 0) {
    if (!enabled_) {
      return 0;
    }
    const uint64_t id = ++last_flow_id_;
    Push(when, TraceKind::kIpcFlow, TracePhase::kFlowOut, id, from_tid, a, 0);
    Push(when, TraceKind::kIpcFlow, TracePhase::kFlowIn, id, to_tid, a, 0);
    return id;
  }

  // Events in chronological order (oldest first; the ring may have dropped
  // earlier ones -- see dropped()).
  std::vector<TraceEvent> Snapshot() const;

  // Number of events ever recorded (including overwritten ones).
  uint64_t total_recorded() const { return next_; }
  // Number of events the ring has overwritten (lost to truncation).
  uint64_t dropped() const { return next_ > events_.size() ? next_ - events_.size() : 0; }
  size_t size() const { return events_.size(); }
  void Clear() {
    events_.clear();
    next_ = 0;
    last_span_id_ = 0;
    last_flow_id_ = 0;
  }

  // Renders the snapshot as one line per event.
  std::string Dump() const;

  // Attaches a sink that sees every pushed event (nullptr detaches). The
  // sink outlives ring truncation, so a streaming writer loses nothing even
  // with a small ring.
  void SetSink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

 private:
  void Push(Time when, TraceKind kind, TracePhase phase, uint64_t span_id, uint64_t tid,
            uint32_t a, uint32_t b) {
    const TraceEvent e{when, span_id, tid, kind, phase, a, b};
    if (events_.size() < capacity_) {
      events_.push_back(e);
    } else {
      events_[next_ & mask_] = e;
    }
    ++next_;
    if (sink_ != nullptr) {
      sink_->OnEvent(e);
    }
  }

  size_t capacity_ = 0;
  size_t mask_ = 0;
  bool enabled_ = false;
  TraceSink* sink_ = nullptr;
  std::vector<TraceEvent> events_;
  uint64_t next_ = 0;
  uint64_t last_span_id_ = 0;
  uint64_t last_flow_id_ = 0;
};

}  // namespace fluke

#endif  // SRC_KERN_TRACE_H_
