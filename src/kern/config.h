// Kernel configuration: execution model and preemption mode.
//
// The paper's Table 4 defines five configurations. Full preemption requires
// the ability to block (be descheduled) inside the kernel while retaining
// kernel-stack state, so it exists only in the process model; the same
// constraint is enforced here in KernelConfig::Validate().
//
// The paper selects the model at compile time; we select it at runtime so a
// single binary can run the controlled comparison. The property the paper
// actually demonstrates -- that the syscall handler source is shared between
// models, with only the entry/exit/context-switch layer differing -- is
// preserved: the model is consulted only in src/kern/dispatch.cc and
// src/kern/ktask.h.

#ifndef SRC_KERN_CONFIG_H_
#define SRC_KERN_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/uvm/engine.h"

namespace fluke {

// Deterministic fault-injection plan (src/kern/faultinject.h). All knobs
// key off virtual-time-deterministic opportunity counters, so the same plan
// replays the exact same fault schedule on every run, in either interpreter
// engine. The injector is constructed disarmed; hosts call
// Kernel::finj.Arm() once setup (which must never be failed) is complete.
struct FaultPlan {
  static constexpr uint64_t kNever = ~0ull;
  bool enabled = false;
  uint64_t seed = 1;
  // Clamp every user burst to one instruction so each instruction retires
  // at its own dispatch boundary (the atomicity audit sweeps these).
  bool single_step = false;
  // Forced extract-destroy-recreate at this dispatch boundary (0-based).
  uint64_t extract_at = kNever;
  // Freeze the whole kernel (Kernel::crashed()) at this dispatch boundary.
  uint64_t crash_at = kNever;
  // Resource faults: fail every Nth opportunity (0 = off) and/or a seeded
  // permille of opportunities.
  uint32_t fail_frame_every = 0;
  uint32_t fail_frame_permille = 0;
  uint32_t fail_handle_every = 0;
  uint32_t fail_connect_every = 0;
};

enum class ExecModel : int {
  kProcess = 0,   // one kernel stack (coroutine frame) per thread
  kInterrupt = 1, // one kernel stack per CPU; frames destroyed on block
};

enum class PreemptMode : int {
  kNone = 0,     // NP: kernel never preempted
  kPartial = 1,  // PP: explicit preemption point on the IPC copy path
  kFull = 2,     // FP: preemptible at every work quantum (process model only)
};

// Upper bound on simulated CPUs. Each CPU costs a ReadyQueue, a virtual-time
// lane and (in the parallel backend) a host worker thread, so the cap is a
// sanity bound, not a hardware limit; 64 comfortably covers current hosts.
inline constexpr int kMaxCpus = 64;

struct KernelConfig {
  ExecModel model = ExecModel::kProcess;
  PreemptMode preempt = PreemptMode::kNone;
  int num_cpus = 1;
  // Timeslice for same-priority round-robin, in timer ticks.
  uint32_t timeslice_ticks = 10;
  // Timer tick period (default 1 ms, as in the paper's latency experiment).
  uint64_t tick_ns = 1000 * 1000;
  // IPC copy-path preemption point interval, in bytes (paper: 8 KiB).
  uint32_t preempt_chunk_bytes = 8 * 1024;
  uint64_t rng_seed = 1;
  // Software TLB on the user-memory hot path (src/kern/tlb.h). Pure host-
  // side caching: results are bit-identical either way (tested by
  // tests/tlb_test.cc); off exists for that A/B check and for debugging.
  bool enable_tlb = true;
  // Interpreter engine selection (src/uvm/engine.h). Pure host-side
  // execution engine swap: results are bit-identical across all three
  // engines (tested by tests/interp_dispatch_test.cc). kThreaded degrades
  // to kSwitch when the computed-goto engine is not compiled in
  // (FLUKE_INTERP_COMPUTED_GOTO); kJit degrades to kThreaded (then kSwitch)
  // when the host target is unsupported or refuses executable pages.
  InterpEngine interp_engine = InterpEngine::kThreaded;
  // Deprecated alias, kept so older call sites and scripts keep working:
  // when false it forces the switch engine regardless of interp_engine.
  // New code should set interp_engine and leave this alone.
  bool enable_threaded_interp = true;

  // The engine the kernel actually runs: interp_engine unless the
  // deprecated alias demands the switch reference engine.
  InterpEngine EffectiveEngine() const {
    return enable_threaded_interp ? interp_engine : InterpEngine::kSwitch;
  }
  // Syscall/IPC fast paths (src/kern/dispatch.cc): trivial syscalls and the
  // reliable-IPC direct-handoff send run outside the coroutine machinery
  // when instrumentation is disarmed, charging the identical virtual-time
  // costs. Pure host-side dispatch swap: results are bit-identical either
  // way (tested by tests/fastpath_equivalence_test.cc); off exists for that
  // A/B check and for debugging. Self-disables while a FaultPlan is armed
  // or the trace buffer is enabled.
  bool fast_path = true;
  // Epoch quantum for the multi-CPU dispatcher (src/kern/dispatch.cc): each
  // CPU runs its own virtual-time lane up to
  // min(epoch base + mp_epoch_ns, next timer deadline, run horizon), then
  // all CPUs meet at a barrier where timers/IRQs fire and cross-CPU effects
  // merge in CPU order. Smaller epochs tighten device-timer latency bounds;
  // larger epochs amortize barrier cost. Irrelevant when num_cpus == 1.
  uint64_t mp_epoch_ns = 100 * 1000;
  // Execute multi-CPU epochs on host worker threads (one per simulated CPU)
  // instead of a serial per-CPU loop. Both backends run the identical epoch
  // schedule and are bit-identical (tested by tests/mp_test.cc); serial
  // exists for that A/B check and is forced whenever instrumentation
  // (fault plan / trace) is live, mirroring the fast_path rule.
  bool mp_parallel = true;
  // Deterministic fault injection; inert unless fault_plan.enabled and the
  // injector is armed (tests arm it after host-side setup).
  FaultPlan fault_plan;

  // Empty string when the configuration is usable; otherwise a description
  // of the first problem found.
  std::string Validate() const {
    if (num_cpus <= 0) {
      return "num_cpus must be >= 1 (got " + std::to_string(num_cpus) + ")";
    }
    if (num_cpus > kMaxCpus) {
      return "num_cpus must be <= " + std::to_string(kMaxCpus) + " (got " +
             std::to_string(num_cpus) + ")";
    }
    if (preempt == PreemptMode::kFull && model == ExecModel::kInterrupt) {
      // Paper section 5.2: FP needs per-thread kernel stacks.
      return "full preemption requires the process model";
    }
    if (num_cpus > 1 && mp_epoch_ns == 0) {
      return "mp_epoch_ns must be nonzero when num_cpus > 1";
    }
    return "";
  }

  bool Valid() const { return Validate().empty(); }

  // Paper-style label, e.g. "Process NP", "Interrupt PP".
  std::string Label() const;
};

// The five valid configurations of Table 4, in the paper's order.
inline constexpr int kNumPaperConfigs = 5;
KernelConfig PaperConfig(int index);

}  // namespace fluke

#endif  // SRC_KERN_CONFIG_H_
