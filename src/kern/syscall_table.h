// The syscall registry (drives dispatch and reproduces Table 1).
//
// Every entrypoint carries its Table 1 category; bench/table1_api prints the
// breakdown from this registry, so the 8/68/8/23 split is a measured
// property of the implementation, not a claim.

#ifndef SRC_KERN_SYSCALL_TABLE_H_
#define SRC_KERN_SYSCALL_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/api/abi.h"
#include "src/kern/fwd.h"
#include "src/kern/ktask.h"

namespace fluke {

struct SyscallDef {
  uint32_t num = 0;
  const char* name = "";
  SysCat cat = SysCat::kShort;
  // True for the five entrypoints that exist primarily as restart points for
  // interrupted multi-stage operations (paper section 4.4).
  bool restart_point = false;
  // Auxiliary argument passed to shared handlers (the object type for the
  // 54 common object operations).
  uint32_t aux = 0;
  KTask (*handler)(SysCtx&) = nullptr;
};

// Returns the definition for `num`, or null for an invalid entrypoint.
const SyscallDef* GetSyscall(uint32_t num);

// The complete registry, ordered by entrypoint number.
const std::vector<SyscallDef>& AllSyscalls();

}  // namespace fluke

#endif  // SRC_KERN_SYSCALL_TABLE_H_
