// The syscall registry (drives dispatch and reproduces Table 1).
//
// Every entrypoint carries its Table 1 category; bench/table1_api prints the
// breakdown from this registry, so the 8/68/8/23 split is a measured
// property of the implementation, not a claim.

#ifndef SRC_KERN_SYSCALL_TABLE_H_
#define SRC_KERN_SYSCALL_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/api/abi.h"
#include "src/kern/fwd.h"
#include "src/kern/ktask.h"

namespace fluke {

class Kernel;

struct SyscallDef {
  uint32_t num = 0;
  const char* name = "";
  SysCat cat = SysCat::kShort;
  // True for the five entrypoints that exist primarily as restart points for
  // interrupted multi-stage operations (paper section 4.4).
  bool restart_point = false;
  // Auxiliary argument passed to shared handlers (the object type for the
  // 54 common object operations).
  uint32_t aux = 0;
  KTask (*handler)(SysCtx&) = nullptr;
  // Optional fast-path handler, consulted only when instrumentation is
  // disarmed (dispatch.cc). Either performs the complete syscall -- same
  // registers, charges and frame accounting as `handler`, bit-identical
  // final state -- and returns true, or mutates nothing and returns false
  // (the dispatcher then runs `handler` normally).
  bool (*fast)(Kernel& k, Thread* t, const SyscallDef& def) = nullptr;
};

// Returns the definition for `num`, or null for an invalid entrypoint.
const SyscallDef* GetSyscall(uint32_t num);

// Flat by-number dispatch table of kSysCount entries (null holes for
// unassigned numbers): the hot path indexes this directly.
const SyscallDef* const* SyscallsByNum();

// The complete registry, ordered by entrypoint number.
const std::vector<SyscallDef>& AllSyscalls();

// Fast-path handlers (SyscallDef::fast): trivial syscalls (syscalls.cc) and
// the reliable-IPC direct-handoff send (ipc.cc).
bool FastTrivial(Kernel& k, Thread* t, const SyscallDef& def);
bool FastIpcSend(Kernel& k, Thread* t, const SyscallDef& def);

}  // namespace fluke

#endif  // SRC_KERN_SYSCALL_TABLE_H_
