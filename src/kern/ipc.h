// Fluke IPC: reliable, connection-oriented, fully restartable.
//
// The 21 IPC entrypoints are faces of one engine. A thread's current IPC
// stance (sending with C/D naming the buffer, or receiving with SI/DI) is
// derivable purely from its user registers -- specifically the entrypoint
// number in register A -- so a blocked thread's exported state is complete,
// and restarting an interrupted operation is just re-executing the
// (possibly rewritten) entrypoint. Multi-stage operations commit stage
// transitions by rewriting register A in place, exactly as the paper
// describes for ipc_client_connect_send -> ipc_client_send.
//
// The engine runs in whichever of the two connected threads is on-CPU; it
// advances BOTH threads' parameter registers at each commit, so a blocked
// peer's exported state stays current ("both threads are left in the
// well-defined state of having transferred some data and about to start an
// IPC to transfer more"). Completion of a blocked peer's stage is performed
// by mutating its thread state without running it -- the "continuation
// recognition" optimization the paper inherits from Draves et al., which an
// atomic API gets for free.

#ifndef SRC_KERN_IPC_H_
#define SRC_KERN_IPC_H_

#include <cstdint>

#include "src/kern/fwd.h"
#include "src/kern/ktask.h"
#include "src/kern/objects.h"

namespace fluke {

enum IpcStanceKind : int {
  IpcStance_kNone = 0,
  IpcStance_kConnecting,  // register A names a connect-phase entrypoint
  IpcStance_kSending,     // register A names a send-phase entrypoint
  IpcStance_kReceiving,   // register A names a receive-phase entrypoint
  IpcStance_kWaiting,     // register A names a wait_receive-style entrypoint
};

// The stance encoded in a thread's current entrypoint register.
IpcStanceKind IpcStance(const Thread* t);

// What a send-phase entrypoint's register A becomes once its send stage
// completes; 0 means the operation finishes outright. `disconnect` is set
// for the *_wait_receive variants that drop the connection after replying.
uint32_t SendSuccessor(uint32_t sys, bool* disconnect);

// The unified engine; registered as the handler for every multi-stage IPC
// entrypoint. Interprets the thread's register A (which stage commits
// rewrite in place) until the operation completes or blocks.
KTask SysIpcEngine(SysCtx& ctx);

// Short (non-blocking) IPC entrypoints.
KTask SysIpcClientDisconnect(SysCtx& ctx);
KTask SysIpcServerDisconnect(SysCtx& ctx);

// Breaks `t`'s connection; a peer blocked mid-IPC completes with
// kFlukeErrDisconnected.
void IpcDisconnect(Kernel& k, Thread* t);

}  // namespace fluke

#endif  // SRC_KERN_IPC_H_
