// Chrome/Perfetto trace_event JSON export.
//
// Converts a TraceBuffer snapshot into the Chrome trace_event JSON format
// (the "JSON Array Format" with a traceEvents wrapper), loadable directly
// in ui.perfetto.dev or chrome://tracing:
//
//   * virtual nanoseconds -> trace microseconds (ts is a double, so the
//     sub-microsecond part survives),
//   * kernel threads -> tids (tid 0 is the synthetic idle/kernel track),
//   * spans -> "B"/"E" duration slices (named by syscall where known),
//   * flows -> "s"/"f" flow events binding to the enclosing slices,
//   * instants -> "i" thread-scoped instant events.
//
// The writer sanitizes the stream for viewers: an E whose B was dropped by
// the ring is skipped, and spans still open at the end of the snapshot are
// closed at the final timestamp. The number of ring-dropped events is
// reported as process metadata.

#ifndef SRC_KERN_TRACE_EXPORT_H_
#define SRC_KERN_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/kern/trace.h"

namespace fluke {

class Kernel;

// Low-level entry point: export an explicit event stream. `thread_names`
// maps tids to display names (tid 0 is always named internally);
// `dropped` is TraceBuffer::dropped(); `end_ns` is the timestamp used to
// close still-open spans (use the final virtual time of the run).
std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<std::pair<uint64_t, std::string>>& thread_names,
                              uint64_t dropped, Time end_ns);

// Convenience: snapshot `k.trace`, name the tracks after the kernel's
// threads (program name + thread id), and close open spans at k.clock.now().
std::string ExportChromeTrace(const Kernel& k);

}  // namespace fluke

#endif  // SRC_KERN_TRACE_EXPORT_H_
