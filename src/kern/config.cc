#include "src/kern/config.h"

#include <cassert>

namespace fluke {

std::string KernelConfig::Label() const {
  std::string s = model == ExecModel::kProcess ? "Process" : "Interrupt";
  switch (preempt) {
    case PreemptMode::kNone:
      s += " NP";
      break;
    case PreemptMode::kPartial:
      s += " PP";
      break;
    case PreemptMode::kFull:
      s += " FP";
      break;
  }
  return s;
}

KernelConfig PaperConfig(int index) {
  KernelConfig c;
  switch (index) {
    case 0:  // Process NP
      c.model = ExecModel::kProcess;
      c.preempt = PreemptMode::kNone;
      break;
    case 1:  // Process PP
      c.model = ExecModel::kProcess;
      c.preempt = PreemptMode::kPartial;
      break;
    case 2:  // Process FP
      c.model = ExecModel::kProcess;
      c.preempt = PreemptMode::kFull;
      break;
    case 3:  // Interrupt NP
      c.model = ExecModel::kInterrupt;
      c.preempt = PreemptMode::kNone;
      break;
    case 4:  // Interrupt PP
      c.model = ExecModel::kInterrupt;
      c.preempt = PreemptMode::kPartial;
      break;
    default:
      assert(false && "PaperConfig index out of range");
      break;
  }
  return c;
}

}  // namespace fluke
