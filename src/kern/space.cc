#include "src/kern/space.h"

#include <algorithm>
#include <cstring>

namespace fluke {

Space::~Space() {
  for (auto& [page, pte] : pages_) {
    if (pte.frame != kInvalidFrame) {
      phys_->Unref(pte.frame);
    }
  }
}

Handle Space::Install(std::shared_ptr<KernelObject> obj) {
  // Reuse a dead slot if available; otherwise grow.
  for (size_t i = 1; i < handles_.size(); ++i) {
    if (handles_[i] == nullptr) {
      handles_[i] = std::move(obj);
      return static_cast<Handle>(i);
    }
  }
  handles_.push_back(std::move(obj));
  return static_cast<Handle>(handles_.size() - 1);
}

KernelObject* Space::Lookup(Handle h) const {
  if (h == kInvalidHandle || h >= handles_.size() || handles_[h] == nullptr) {
    return nullptr;
  }
  KernelObject* o = handles_[h].get();
  return o->alive() ? o : nullptr;
}

KernelObject* Space::LookupAnyState(Handle h) const {
  if (h == kInvalidHandle || h >= handles_.size()) {
    return nullptr;
  }
  return handles_[h].get();
}

std::shared_ptr<KernelObject> Space::LookupShared(Handle h) const {
  if (h == kInvalidHandle || h >= handles_.size() || handles_[h] == nullptr) {
    return nullptr;
  }
  return handles_[h]->alive() ? handles_[h] : nullptr;
}

void Space::Uninstall(Handle h) {
  if (h != kInvalidHandle && h < handles_.size()) {
    handles_[h] = nullptr;
  }
}

size_t Space::handle_count() const {
  size_t n = 0;
  for (const auto& p : handles_) {
    if (p != nullptr) {
      ++n;
    }
  }
  return n;
}

bool Space::PagePresent(uint32_t vaddr) const {
  return pages_.count(vaddr >> kPageShift) != 0;
}

const Pte* Space::FindPte(uint32_t vaddr) const {
  auto it = pages_.find(vaddr >> kPageShift);
  return it == pages_.end() ? nullptr : &it->second;
}

void Space::MapPage(uint32_t vaddr, FrameId frame, uint32_t prot) {
  phys_->Ref(frame);  // ref first: replacing a page with itself must not free it
  auto it = pages_.find(vaddr >> kPageShift);
  if (it != pages_.end()) {
    if (it->second.frame != kInvalidFrame) {
      phys_->Unref(it->second.frame);
    }
    it->second = Pte{frame, prot};
  } else {
    pages_.emplace(vaddr >> kPageShift, Pte{frame, prot});
  }
}

void Space::UnmapPage(uint32_t vaddr) {
  auto it = pages_.find(vaddr >> kPageShift);
  if (it != pages_.end()) {
    if (it->second.frame != kInvalidFrame) {
      phys_->Unref(it->second.frame);
    }
    pages_.erase(it);
  }
}

FrameId Space::ProvidePage(uint32_t vaddr, uint32_t prot) {
  FrameId f = phys_->Alloc();
  if (f == kInvalidFrame) {
    return kInvalidFrame;
  }
  MapPage(vaddr, f, prot);
  phys_->Unref(f);  // MapPage took its own reference; drop Alloc's
  return f;
}

void Space::RemoveMapping(Mapping* m) {
  mappings_.erase(std::remove(mappings_.begin(), mappings_.end(), m), mappings_.end());
}

SoftFaultResult Space::TryResolveSoft(uint32_t vaddr, bool want_write) {
  SoftFaultResult r;
  const uint32_t want = want_write ? kProtWrite : kProtRead;

  // Walk the mapping hierarchy: mapping -> region -> source space, possibly
  // recursing through the source space's own mappings.
  struct Level {
    Space* space;
    uint32_t addr;
    uint32_t prot;  // effective protection accumulated along the chain
  };
  Level cur{this, vaddr, kProtReadWrite};
  for (int depth = 0; depth < 8; ++depth) {
    if (depth > 0) {
      // Does the current level's page table have the page?
      const Pte* pte = cur.space->FindPte(cur.addr);
      if (pte != nullptr) {
        const uint32_t eff = pte->prot & cur.prot;
        if ((eff & want) != want) {
          return r;  // reachable but protection forbids the access
        }
        // Install into the faulting space.
        UnmapPage(vaddr);
        MapPage(vaddr, pte->frame, eff);
        r.resolved = true;
        r.levels_walked = depth;
        return r;
      }
      // Note: an ancestor's anonymous range does NOT let the kernel invent
      // a page on the faulting space's behalf -- providing backing pages for
      // an exported region is the owning space's (manager's) job, so the
      // fault stays hard and goes to the keeper. Only the faulting space's
      // own anon range (depth 0, below) is kernel-filled, and explicit
      // mappings take priority over it.
    }

    // Find a mapping at this level covering the address.
    Mapping* found = nullptr;
    for (Mapping* m : cur.space->mappings()) {
      if (m->alive() && cur.addr - m->base < m->size) {
        found = m;
        break;
      }
    }
    if (found == nullptr || found->src == nullptr || !found->src->alive()) {
      if (depth == 0 && cur.space->InAnonRange(cur.addr)) {
        // Unmapped fault inside the faulting space's own anonymous range:
        // kernel zero-fill.
        FrameId f = ProvidePage(vaddr, kProtReadWrite);
        if (f == kInvalidFrame) {
          return r;
        }
        if ((kProtReadWrite & want) != want) {
          return r;
        }
        r.resolved = true;
        r.zero_filled = true;
        return r;
      }
      return r;  // hard fault
    }
    Region* reg = found->src;
    const uint32_t region_off = (cur.addr - found->base) + found->offset;
    if (region_off >= reg->size || reg->source == nullptr) {
      return r;
    }
    cur = Level{reg->source, reg->base + region_off, cur.prot & found->prot & reg->prot};
  }
  return r;  // hierarchy too deep: treat as hard
}

uint8_t* Space::PageData(uint32_t vaddr, uint32_t want_prot, uint32_t* fault_addr) {
  const Pte* pte = FindPte(vaddr);
  if (pte == nullptr || (pte->prot & want_prot) != want_prot) {
    *fault_addr = vaddr;
    return nullptr;
  }
  return phys_->Data(pte->frame) + (vaddr & kPageMask);
}

bool Space::ReadByte(uint32_t vaddr, uint8_t* out, uint32_t* fault_addr) {
  const uint8_t* p = PageData(vaddr, kProtRead, fault_addr);
  if (p == nullptr) {
    return false;
  }
  *out = *p;
  return true;
}

bool Space::WriteByte(uint32_t vaddr, uint8_t value, uint32_t* fault_addr) {
  uint8_t* p = PageData(vaddr, kProtWrite, fault_addr);
  if (p == nullptr) {
    return false;
  }
  *p = value;
  return true;
}

bool Space::ReadWord(uint32_t vaddr, uint32_t* out, uint32_t* fault_addr) {
  if ((vaddr & kPageMask) + 4 <= kPageSize) {
    const uint8_t* p = PageData(vaddr, kProtRead, fault_addr);
    if (p == nullptr) {
      return false;
    }
    std::memcpy(out, p, 4);
    return true;
  }
  // Page-straddling word: byte at a time.
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    uint8_t b = 0;
    if (!ReadByte(vaddr + i, &b, fault_addr)) {
      return false;
    }
    v |= static_cast<uint32_t>(b) << (8 * i);
  }
  *out = v;
  return true;
}

bool Space::WriteWord(uint32_t vaddr, uint32_t value, uint32_t* fault_addr) {
  if ((vaddr & kPageMask) + 4 <= kPageSize) {
    uint8_t* p = PageData(vaddr, kProtWrite, fault_addr);
    if (p == nullptr) {
      return false;
    }
    std::memcpy(p, &value, 4);
    return true;
  }
  for (int i = 0; i < 4; ++i) {
    if (!WriteByte(vaddr + i, static_cast<uint8_t>(value >> (8 * i)), fault_addr)) {
      return false;
    }
  }
  return true;
}

bool Space::HostRead(uint32_t vaddr, void* out, uint32_t len) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  for (uint32_t i = 0; i < len;) {
    const Pte* pte = FindPte(vaddr + i);
    if (pte == nullptr) {
      return false;
    }
    const uint32_t off = (vaddr + i) & kPageMask;
    const uint32_t n = std::min(len - i, kPageSize - off);
    std::memcpy(dst + i, phys_->Data(pte->frame) + off, n);
    i += n;
  }
  return true;
}

bool Space::HostWrite(uint32_t vaddr, const void* data, uint32_t len) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  for (uint32_t i = 0; i < len;) {
    const uint32_t addr = vaddr + i;
    const Pte* pte = FindPte(addr);
    if (pte == nullptr) {
      if (ProvidePage(addr, kProtReadWrite) == kInvalidFrame) {
        return false;
      }
      pte = FindPte(addr);
    }
    const uint32_t off = addr & kPageMask;
    const uint32_t n = std::min(len - i, kPageSize - off);
    std::memcpy(phys_->Data(pte->frame) + off, src + i, n);
    i += n;
  }
  return true;
}

}  // namespace fluke
