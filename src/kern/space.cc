#include "src/kern/space.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace fluke {

Space::~Space() {
  TlbFlushAll();
  for (auto& [page, pte] : pages_) {
    if (pte.frame != kInvalidFrame) {
      phys_->Unref(pte.frame);
    }
  }
}

Handle Space::Install(std::shared_ptr<KernelObject> obj) {
  ++live_handles_;
  // Reuse a dead slot if available; otherwise grow.
  while (!free_slots_.empty()) {
    const Handle h = free_slots_.back();
    free_slots_.pop_back();
    if (h < handles_.size() && handles_[h] == nullptr) {
      handles_[h] = std::move(obj);
      return h;
    }
  }
  handles_.push_back(std::move(obj));
  return static_cast<Handle>(handles_.size() - 1);
}

KernelObject* Space::Lookup(Handle h) const {
  if (h == kInvalidHandle || h >= handles_.size() || handles_[h] == nullptr) {
    return nullptr;
  }
  KernelObject* o = handles_[h].get();
  return o->alive() ? o : nullptr;
}

KernelObject* Space::LookupAnyState(Handle h) const {
  if (h == kInvalidHandle || h >= handles_.size()) {
    return nullptr;
  }
  return handles_[h].get();
}

std::shared_ptr<KernelObject> Space::LookupShared(Handle h) const {
  if (h == kInvalidHandle || h >= handles_.size() || handles_[h] == nullptr) {
    return nullptr;
  }
  return handles_[h]->alive() ? handles_[h] : nullptr;
}

void Space::Uninstall(Handle h) {
  if (h != kInvalidHandle && h < handles_.size() && handles_[h] != nullptr) {
    handles_[h] = nullptr;
    free_slots_.push_back(h);
    --live_handles_;
  }
}

size_t Space::handle_count() const { return live_handles_; }

void Space::ReplaceHandle(Handle h, std::shared_ptr<KernelObject> obj) {
  assert(h != kInvalidHandle && h < handles_.size() && handles_[h] != nullptr);
  handles_[h] = std::move(obj);
}

void Space::SetDirtyTracking() {
  if (dirty_track_) {
    return;
  }
  dirty_track_ = true;
  // Clean pages must stop being cached so their first write reaches the
  // dirty hook; cached span pointers revalidate against pt_gen.
  ++pt_gen_;
  TlbFlushAll();
}

size_t Space::CkptMark(bool delta) {
  assert(ckpt_session_ != nullptr);
  CkptSpaceCapture& sc = ckpt_session_->spaces[ckpt_space_index_];
  size_t marked = 0;
  for (auto& [page, pte] : pages_) {
    if (delta && !pte.dirty) {
      continue;
    }
    pte.ckpt_marked = true;
    pte.dirty = false;
    CkptPage rec;
    rec.pagenum = page;
    rec.prot = pte.prot;
    sc.pages.push_back(std::move(rec));
    ++marked;
  }
  // Deterministic drain/image order independent of hash-map iteration.
  std::sort(sc.pages.begin(), sc.pages.end(),
            [](const CkptPage& a, const CkptPage& b) { return a.pagenum < b.pagenum; });
  sc.index.clear();
  for (size_t i = 0; i < sc.pages.size(); ++i) {
    sc.index.emplace(sc.pages[i].pagenum, i);
  }
  ckpt_session_->pending += marked;
  // Marked pages must never be served from the TLB: any cached write
  // pointer would bypass the save-on-write hook.
  ++pt_gen_;
  TlbFlushAll();
  return marked;
}

void Space::CkptCapturePage(CkptPage& rec) {
  auto it = pages_.find(rec.pagenum);
  // An uncaptured record implies the PTE still exists and is still marked:
  // every path that unmaps, remaps or writes the page saves it first.
  assert(it != pages_.end() && it->second.ckpt_marked);
  const uint8_t* src = phys_->Data(it->second.frame);
  rec.data.assign(src, src + kPageSize);
  rec.captured = true;
  it->second.ckpt_marked = false;  // page becomes TLB-cacheable again lazily
  --ckpt_session_->pending;
}

void Space::CkptSaveMarked(uint32_t page, Pte& pte) {
  pte.ckpt_marked = false;
  if (ckpt_session_ == nullptr) {
    return;  // stale mark after a detached session; nothing is owed
  }
  CkptSpaceCapture& sc = ckpt_session_->spaces[ckpt_space_index_];
  auto it = sc.index.find(page);
  if (it == sc.index.end()) {
    return;
  }
  CkptPage& rec = sc.pages[it->second];
  if (rec.captured) {
    return;
  }
  const uint8_t* src = phys_->Data(pte.frame);
  rec.data.assign(src, src + kPageSize);
  rec.captured = true;
  --ckpt_session_->pending;
  ++ckpt_session_->cow_saves;
  if (stats_ != nullptr) {
    ++stats_->ckpt_cow_saves;
  }
}

bool Space::PagePresent(uint32_t vaddr) const {
  return pages_.count(vaddr >> kPageShift) != 0;
}

const Pte* Space::FindPte(uint32_t vaddr) const {
  auto it = pages_.find(vaddr >> kPageShift);
  return it == pages_.end() ? nullptr : &it->second;
}

void Space::MapPage(uint32_t vaddr, FrameId frame, uint32_t prot) {
  ++pt_gen_;
  TlbInvalidatePage(vaddr >> kPageShift);  // shootdown: remap or prot change
  phys_->Ref(frame);  // ref first: replacing a page with itself must not free it
  auto it = pages_.find(vaddr >> kPageShift);
  if (it != pages_.end()) {
    if (it->second.ckpt_marked) {
      // Replacing a page an in-progress checkpoint still owes: save the old
      // contents first (covers CowBreak remaps, lends, remedy installs).
      CkptSaveMarked(vaddr >> kPageShift, it->second);
    }
    if (it->second.frame != kInvalidFrame) {
      phys_->Unref(it->second.frame);
    }
    it->second = Pte{frame, prot};  // dirty defaults true: content changed
  } else {
    pages_.emplace(vaddr >> kPageShift, Pte{frame, prot});
  }
}

void Space::UnmapPage(uint32_t vaddr) {
  ++pt_gen_;
  TlbInvalidatePage(vaddr >> kPageShift);  // shootdown: no stale translation
  auto it = pages_.find(vaddr >> kPageShift);
  if (it != pages_.end()) {
    if (it->second.ckpt_marked) {
      CkptSaveMarked(vaddr >> kPageShift, it->second);
    }
    if (it->second.frame != kInvalidFrame) {
      phys_->Unref(it->second.frame);
    }
    pages_.erase(it);
  }
}

void Space::TlbInvalidatePage(uint32_t page) {
  if (tlb_.InvalidatePage(page) && stats_ != nullptr) {
    ++stats_->tlb_flushes;
  }
}

void Space::TlbFlushAll() {
  const uint32_t discarded = tlb_.FlushAll();
  if (stats_ != nullptr) {
    stats_->tlb_flushes += discarded;
  }
}

FrameId Space::ProvidePage(uint32_t vaddr, uint32_t prot) {
  FrameId f = phys_->Alloc();
  if (f == kInvalidFrame) {
    return kInvalidFrame;
  }
  MapPage(vaddr, f, prot);
  phys_->Unref(f);  // MapPage took its own reference; drop Alloc's
  return f;
}

bool Space::CowBreak(uint32_t vaddr, Pte& pte) {
  if (phys_->refcount(pte.frame) > 1) {
    const FrameId nf = phys_->Alloc();
    if (nf == kInvalidFrame) {
      return false;
    }
    std::memcpy(phys_->Data(nf), phys_->Data(pte.frame), kPageSize);
    // MapPage bumps pt_gen_, shoots down the TLB entry, unrefs the shared
    // frame and resets cow (Pte{} default). The other holder keeps its own
    // cow flag; its next write privatizes (or just clears, if it is by then
    // the sole holder).
    MapPage(vaddr, nf, pte.prot);
    phys_->Unref(nf);  // MapPage took its own reference; drop Alloc's
  } else {
    // Sole holder already: nothing to copy. The translation itself is
    // unchanged (same frame, same prot, strictly wider host access), so no
    // generation bump or shootdown is needed -- cached read pointers stay
    // valid and no cached write pointer can exist for a cow page.
    pte.cow = false;
  }
  return true;
}

bool Space::EnsurePrivateFrame(uint32_t vaddr) {
  auto it = pages_.find(vaddr >> kPageShift);
  if (it == pages_.end() || !it->second.cow) {
    return true;
  }
  return CowBreak(vaddr, it->second);
}

bool Space::SharePageFrom(Space& from, uint32_t src_vaddr, uint32_t dst_vaddr) {
  auto sit = from.pages_.find(src_vaddr >> kPageShift);
  if (sit == from.pages_.end() || (sit->second.prot & kProtRead) == 0) {
    return false;
  }
  auto dit = pages_.find(dst_vaddr >> kPageShift);
  if (dit == pages_.end() || (dit->second.prot & kProtWrite) == 0) {
    return false;
  }
  if (dit->second.frame == sit->second.frame) {
    return true;  // already lent (steady state: repeated sends of one buffer)
  }
  // A frame referenced by several PTEs *without* cow is shared through the
  // mapping hierarchy. Lending is wrong on either end then: hierarchy
  // references to the source would not honor the break-before-write
  // contract, and a copy into a hierarchy-shared destination frame is
  // visible to its other sharers, which a remap would not reproduce.
  if (phys_->refcount(sit->second.frame) > 1 && !sit->second.cow) {
    return false;
  }
  if (phys_->refcount(dit->second.frame) > 1 && !dit->second.cow) {
    return false;
  }
  MapPage(dst_vaddr, sit->second.frame, dit->second.prot);
  dit->second.cow = true;
  if (!sit->second.cow) {
    sit->second.cow = true;
    // The source translation narrows for host writes: cached write pointers
    // (IPC span cache, TLB) must revalidate and re-walk.
    ++from.pt_gen_;
    from.TlbInvalidatePage(src_vaddr >> kPageShift);
  }
  return true;
}

void Space::RemoveMapping(Mapping* m) {
  mappings_.erase(std::remove(mappings_.begin(), mappings_.end(), m), mappings_.end());
}

SoftFaultResult Space::TryResolveSoft(uint32_t vaddr, bool want_write) {
  SoftFaultResult r;
  const uint32_t want = want_write ? kProtWrite : kProtRead;

  // Walk the mapping hierarchy: mapping -> region -> source space, possibly
  // recursing through the source space's own mappings.
  struct Level {
    Space* space;
    uint32_t addr;
    uint32_t prot;  // effective protection accumulated along the chain
  };
  Level cur{this, vaddr, kProtReadWrite};
  for (int depth = 0; depth < 8; ++depth) {
    if (depth > 0) {
      // Does the current level's page table have the page?
      const Pte* pte = cur.space->FindPte(cur.addr);
      if (pte != nullptr) {
        const uint32_t eff = pte->prot & cur.prot;
        if ((eff & want) != want) {
          return r;  // reachable but protection forbids the access
        }
        if (pte->cow) {
          // Never hand a lent (copy-on-write) frame to the hierarchy: the
          // new reference would not honor the break-before-write contract.
          // Privatize the source page first, then install its own frame.
          if (!cur.space->EnsurePrivateFrame(cur.addr)) {
            r.out_of_frames = true;  // retryable frame exhaustion
            return r;
          }
          pte = cur.space->FindPte(cur.addr);
        }
        // Install into the faulting space.
        UnmapPage(vaddr);
        MapPage(vaddr, pte->frame, eff);
        r.resolved = true;
        r.levels_walked = depth;
        return r;
      }
      // Note: an ancestor's anonymous range does NOT let the kernel invent
      // a page on the faulting space's behalf -- providing backing pages for
      // an exported region is the owning space's (manager's) job, so the
      // fault stays hard and goes to the keeper. Only the faulting space's
      // own anon range (depth 0, below) is kernel-filled, and explicit
      // mappings take priority over it.
    }

    // Find a mapping at this level covering the address.
    Mapping* found = nullptr;
    for (Mapping* m : cur.space->mappings()) {
      if (m->alive() && cur.addr - m->base < m->size) {
        found = m;
        break;
      }
    }
    if (found == nullptr || found->src == nullptr || !found->src->alive()) {
      if (depth == 0 && cur.space->InAnonRange(cur.addr)) {
        // Unmapped fault inside the faulting space's own anonymous range:
        // kernel zero-fill.
        FrameId f = ProvidePage(vaddr, kProtReadWrite);
        if (f == kInvalidFrame) {
          r.out_of_frames = true;  // retryable frame exhaustion
          return r;
        }
        if ((kProtReadWrite & want) != want) {
          return r;
        }
        r.resolved = true;
        r.zero_filled = true;
        return r;
      }
      return r;  // hard fault
    }
    Region* reg = found->src;
    const uint32_t region_off = (cur.addr - found->base) + found->offset;
    if (region_off >= reg->size || reg->source == nullptr) {
      return r;
    }
    cur = Level{reg->source, reg->base + region_off, cur.prot & found->prot & reg->prot};
  }
  return r;  // hierarchy too deep: treat as hard
}

uint8_t* Space::PageData(uint32_t vaddr, uint32_t want_prot, uint32_t* fault_addr) const {
  const uint32_t page = vaddr >> kPageShift;
  if (tlb_enabled_) {
    const TlbEntry& e = tlb_.Slot(page);
    if (e.tag == page) {
      // Hit. The entry mirrors the PTE exactly (every PTE mutation
      // invalidates it), so a protection mismatch here is a real fault.
      if (stats_ != nullptr) {
        ++stats_->tlb_hits;
      }
      if ((e.prot & want_prot) != want_prot) {
        *fault_addr = vaddr;
        return nullptr;
      }
      return e.data + (vaddr & kPageMask);
    }
    if (stats_ != nullptr) {
      ++stats_->tlb_misses;
    }
  }
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    *fault_addr = vaddr;
    return nullptr;
  }
  if (it->second.cow && (want_prot & kProtWrite) != 0) {
    // Write to a lent (copy-on-write) frame: privatize it first so the other
    // holder never observes the write. Protection is checked before breaking
    // so a forbidden write does not waste a frame copy. CowBreak is a
    // host-side caching/ownership action, not a semantic mutation of the
    // simulated address space, hence the const_cast from this const walk.
    if ((it->second.prot & want_prot) != want_prot) {
      *fault_addr = vaddr;
      return nullptr;
    }
    if (!const_cast<Space*>(this)->CowBreak(vaddr, const_cast<Pte&>(it->second))) {
      *fault_addr = vaddr;  // frame exhaustion: surface as a fault
      return nullptr;
    }
  }
  if ((want_prot & kProtWrite) != 0 && (it->second.prot & want_prot) == want_prot) {
    // Permitted write to the page: satisfy an in-progress checkpoint first
    // (save the pre-write contents) and record the page dirty for delta
    // tracking. Host-side bookkeeping like CowBreak above, hence const_cast.
    Pte& pte = const_cast<Pte&>(it->second);
    if (pte.ckpt_marked) {
      const_cast<Space*>(this)->CkptSaveMarked(page, pte);
    }
    pte.dirty = true;
  }
  uint8_t* base = phys_->Data(it->second.frame);
  if (tlb_enabled_ && !it->second.cow && !it->second.ckpt_marked &&
      (it->second.dirty || !dirty_track_)) {
    // Fill even when the access is about to prot-fault: the entry still
    // mirrors the PTE, and the next permitted access hits. Cow pages are
    // never cached: a TLB hit carrying write permission would bypass the
    // copy-on-write break above. Checkpoint-marked pages are never cached
    // (a hit would bypass the save-on-write hook), and under dirty tracking
    // clean pages are never cached (a hit would bypass the dirty hook).
    tlb_.Fill(page, it->second.prot, base);
  }
  if ((it->second.prot & want_prot) != want_prot) {
    *fault_addr = vaddr;
    return nullptr;
  }
  return base + (vaddr & kPageMask);
}

Span Space::TranslateSpanConst(uint32_t vaddr, uint32_t len, uint32_t want_prot) const {
  if (len == 0) {
    return {};
  }
  uint32_t fault_addr = 0;
  uint8_t* p = PageData(vaddr, want_prot, &fault_addr);
  if (p == nullptr) {
    return {};
  }
  const uint32_t in_page = kPageSize - (vaddr & kPageMask);
  return Span{p, std::min(len, in_page)};
}

bool Space::ReadByte(uint32_t vaddr, uint8_t* out, uint32_t* fault_addr) {
  const uint8_t* p = PageData(vaddr, kProtRead, fault_addr);
  if (p == nullptr) {
    return false;
  }
  *out = *p;
  return true;
}

bool Space::WriteByte(uint32_t vaddr, uint8_t value, uint32_t* fault_addr) {
  uint8_t* p = PageData(vaddr, kProtWrite, fault_addr);
  if (p == nullptr) {
    return false;
  }
  *p = value;
  return true;
}

bool Space::ReadWord(uint32_t vaddr, uint32_t* out, uint32_t* fault_addr) {
  if ((vaddr & kPageMask) + 4 <= kPageSize) {
    const uint8_t* p = PageData(vaddr, kProtRead, fault_addr);
    if (p == nullptr) {
      return false;
    }
    std::memcpy(out, p, 4);
    return true;
  }
  // Page-straddling word: byte at a time.
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    uint8_t b = 0;
    if (!ReadByte(vaddr + i, &b, fault_addr)) {
      return false;
    }
    v |= static_cast<uint32_t>(b) << (8 * i);
  }
  *out = v;
  return true;
}

bool Space::WriteWord(uint32_t vaddr, uint32_t value, uint32_t* fault_addr) {
  if ((vaddr & kPageMask) + 4 <= kPageSize) {
    uint8_t* p = PageData(vaddr, kProtWrite, fault_addr);
    if (p == nullptr) {
      return false;
    }
    std::memcpy(p, &value, 4);
    return true;
  }
  for (int i = 0; i < 4; ++i) {
    if (!WriteByte(vaddr + i, static_cast<uint8_t>(value >> (8 * i)), fault_addr)) {
      return false;
    }
  }
  return true;
}

// The host helpers deliberately ignore page protection (want_prot ==
// kProtNone), matching their historical raw-page-table behavior: they exist
// for test and workload setup, not simulated accesses.

bool Space::HostRead(uint32_t vaddr, void* out, uint32_t len) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  for (uint32_t i = 0; i < len;) {
    const Span s = TranslateSpanConst(vaddr + i, len - i, kProtNone);
    if (s.len == 0) {
      return false;
    }
    std::memcpy(dst + i, s.ptr, s.len);
    i += s.len;
  }
  return true;
}

bool Space::HostWrite(uint32_t vaddr, const void* data, uint32_t len) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  for (uint32_t i = 0; i < len;) {
    const uint32_t addr = vaddr + i;
    if (!EnsurePrivateFrame(addr)) {  // prot-blind, but cow still breaks
      return false;
    }
    // Prot-blind translation below bypasses PageData's write hook, so an
    // in-progress checkpoint and the dirty bit are handled explicitly here.
    auto pit = pages_.find(addr >> kPageShift);
    if (pit != pages_.end()) {
      if (pit->second.ckpt_marked) {
        CkptSaveMarked(addr >> kPageShift, pit->second);
      }
      pit->second.dirty = true;
    }
    Span s = TranslateSpanConst(addr, len - i, kProtNone);
    if (s.len == 0) {
      if (ProvidePage(addr, kProtReadWrite) == kInvalidFrame) {
        return false;
      }
      s = TranslateSpanConst(addr, len - i, kProtNone);
      if (s.len == 0) {
        return false;
      }
    }
    std::memcpy(s.ptr, src + i, s.len);
    i += s.len;
  }
  return true;
}

}  // namespace fluke
