// O(1) ready queue: per-priority intrusive FIFO lists plus a bitmap of
// non-empty priority classes (shape borrowed from CapROS's reserves
// scheduler). Picking the next thread is a bit scan over the bitmap and a
// list pop, independent of how many threads are runnable -- the old
// per-pick walk over all eight run queues (and the AnyRunnable /
// PreemptPending walks) was fine at 5 threads and a scaling cliff at 100k.
//
// Pick order is bit-identical to the old code: the highest non-empty
// priority wins, FIFO within a class, with the dispatcher choosing
// PushFront (retain the slice) vs PushBack (rotate) exactly as before.

#ifndef SRC_KERN_READYQUEUE_H_
#define SRC_KERN_READYQUEUE_H_

#include <bit>
#include <cstdint>

#include "src/base/intrusive_list.h"
#include "src/kern/objects.h"

namespace fluke {

inline constexpr int kNumPrio = 8;

class ReadyQueue {
 public:
  void PushBack(Thread* t) {
    lists_[t->priority].PushBack(t);
    bitmap_ |= 1u << t->priority;
  }

  void PushFront(Thread* t) {
    lists_[t->priority].PushFront(t);
    bitmap_ |= 1u << t->priority;
  }

  void Remove(Thread* t) {
    lists_[t->priority].Remove(t);
    if (lists_[t->priority].empty()) {
      bitmap_ &= ~(1u << t->priority);
    }
  }

  // Pops the front of the highest non-empty class, or null.
  Thread* PopHighest() {
    if (bitmap_ == 0) {
      return nullptr;
    }
    const int p = 31 - std::countl_zero(bitmap_);
    Thread* t = lists_[p].PopFront();
    if (lists_[p].empty()) {
      bitmap_ &= ~(1u << p);
    }
    return t;
  }

  bool Any() const { return bitmap_ != 0; }
  // True when any class strictly above `priority` is non-empty.
  bool AnyAbove(int priority) const { return (bitmap_ >> (priority + 1)) != 0; }

 private:
  IntrusiveList<Thread, &Thread::rq_node> lists_[kNumPrio];
  uint32_t bitmap_ = 0;
};

}  // namespace fluke

#endif  // SRC_KERN_READYQUEUE_H_
