#include "src/kern/faultinject.h"

#include <cstdio>
#include <cstdlib>

namespace fluke {

const char* FaultHookName(FaultHook h) {
  switch (h) {
    case FaultHook::kDispatch:
      return "dispatch";
    case FaultHook::kSyscallEntry:
      return "syscall";
    case FaultHook::kIpcChunk:
      return "ipc_chunk";
    case FaultHook::kPageFault:
      return "page_fault";
    case FaultHook::kFrameAlloc:
      return "frame_alloc";
    case FaultHook::kHandleAlloc:
      return "handle_alloc";
    case FaultHook::kPortConnect:
      return "port_connect";
    case FaultHook::kInterpBoundary:
      return "interp";
    case FaultHook::kCount:
      break;
  }
  return "?";
}

void FaultInjector::Configure(const FaultPlan& plan, KernelStats* stats) {
  plan_ = plan;
  stats_ = stats;
  armed_ = false;
  rng_ = plan.seed;
  injected_ = 0;
  for (uint64_t& o : opportunities_) {
    o = 0;
  }
  schedule_.clear();
}

uint64_t FaultInjector::NextRand() {
  // SplitMix64: tiny, seedable, and independent of the kernel RNG.
  uint64_t z = (rng_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void FaultInjector::RecordInjection(FaultHook h, uint64_t opportunity) {
  ++injected_;
  if (stats_ != nullptr) {
    ++stats_->faults_injected;
  }
  if (schedule_.size() < kMaxScheduleLog) {
    schedule_.push_back({h, opportunity});
  }
}

bool FaultInjector::ShouldExtract(uint64_t boundary) {
  if (!armed_ || boundary != plan_.extract_at) {
    return false;
  }
  RecordInjection(FaultHook::kDispatch, boundary);
  return true;
}

bool FaultInjector::ShouldCrash(uint64_t boundary) {
  if (!armed_ || boundary != plan_.crash_at) {
    return false;
  }
  RecordInjection(FaultHook::kDispatch, boundary);
  return true;
}

bool FaultInjector::EveryNth(FaultHook h, uint32_t every, uint32_t permille) {
  if (!armed_) {
    return false;
  }
  const uint64_t opp = opportunities_[static_cast<int>(h)]++;
  bool fail = every != 0 && (opp + 1) % every == 0;
  if (!fail && permille != 0) {
    // Consume exactly one RNG draw per opportunity so the stream stays
    // aligned whether or not the every-Nth rule already fired.
    fail = NextRand() % 1000 < permille;
  }
  if (fail) {
    RecordInjection(h, opp);
  }
  return fail;
}

bool FaultInjector::ShouldFailFrameAlloc() {
  return EveryNth(FaultHook::kFrameAlloc, plan_.fail_frame_every,
                  plan_.fail_frame_permille);
}

bool FaultInjector::FailHandleAlloc() {
  return EveryNth(FaultHook::kHandleAlloc, plan_.fail_handle_every, 0);
}

bool FaultInjector::FailConnect() {
  return EveryNth(FaultHook::kPortConnect, plan_.fail_connect_every, 0);
}

uint64_t FaultInjector::ScheduleDigest() const {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  auto fold = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ull;
    }
  };
  for (const uint64_t o : opportunities_) {
    fold(o);
  }
  fold(injected_);
  for (const Injection& inj : schedule_) {
    fold(static_cast<uint64_t>(inj.hook));
    fold(inj.opportunity);
  }
  return h;
}

std::string FaultInjector::ScheduleSummary() const {
  std::string out;
  char line[64];
  for (const Injection& inj : schedule_) {
    std::snprintf(line, sizeof(line), "%s@%llu\n", FaultHookName(inj.hook),
                  static_cast<unsigned long long>(inj.opportunity));
    out += line;
  }
  return out;
}

bool ParseFaultPlan(const std::string& spec, FaultPlan* out, std::string* err) {
  FaultPlan plan;
  plan.enabled = true;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      continue;
    }
    const size_t eq = item.find('=');
    const std::string key = item.substr(0, eq);
    uint64_t val = 0;
    bool has_val = eq != std::string::npos;
    if (has_val) {
      const std::string vs = item.substr(eq + 1);
      char* end = nullptr;
      val = std::strtoull(vs.c_str(), &end, 0);
      if (vs.empty() || end == nullptr || *end != '\0') {
        if (err != nullptr) {
          *err = "bad value in fault-plan item: " + item;
        }
        return false;
      }
    }
    bool bad = false;
    if (key == "seed") {
      plan.seed = val;
      bad = !has_val;
    } else if (key == "step") {
      plan.single_step = true;
      bad = has_val;
    } else if (key == "extract") {
      plan.extract_at = val;
      bad = !has_val;
    } else if (key == "crash") {
      plan.crash_at = val;
      bad = !has_val;
    } else if (key == "frame-every") {
      plan.fail_frame_every = static_cast<uint32_t>(val);
      bad = !has_val;
    } else if (key == "frame-permille") {
      plan.fail_frame_permille = static_cast<uint32_t>(val);
      bad = !has_val;
    } else if (key == "handle-every") {
      plan.fail_handle_every = static_cast<uint32_t>(val);
      bad = !has_val;
    } else if (key == "connect-every") {
      plan.fail_connect_every = static_cast<uint32_t>(val);
      bad = !has_val;
    } else {
      if (err != nullptr) {
        *err = "unknown fault-plan key: " + key;
      }
      return false;
    }
    if (bad) {
      if (err != nullptr) {
        *err = "fault-plan key " + key +
               (has_val ? " takes no value" : " needs a value");
      }
      return false;
    }
  }
  *out = plan;
  return true;
}

}  // namespace fluke
