#include "src/kern/ktask.h"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "src/kern/kernel.h"
#include "src/kern/objects.h"

namespace fluke {

// ---------------------------------------------------------------------------
// Frame-byte accounting. The dispatcher sets the current (kernel, thread)
// around every handler spawn/resume/destroy; promise allocations are
// attributed to that thread. Single host thread, so plain globals suffice.
// ---------------------------------------------------------------------------

namespace {
Kernel* g_acct_kernel = nullptr;
Thread* g_acct_thread = nullptr;
size_t* g_frame_probe = nullptr;  // live FrameProbeScope target, or null
}  // namespace

void SetFrameAccounting(Kernel* k, Thread* t) {
  g_acct_kernel = k;
  g_acct_thread = t;
}

void GetFrameAccounting(Kernel** k, Thread** t) {
  *k = g_acct_kernel;
  *t = g_acct_thread;
}

FrameProbeScope::FrameProbeScope()
    : saved_kernel_(g_acct_kernel), saved_thread_(g_acct_thread), saved_probe_(g_frame_probe) {
  g_acct_kernel = nullptr;  // a probe allocation must never hit Table 7
  g_acct_thread = nullptr;
  g_frame_probe = &bytes_;
}

FrameProbeScope::~FrameProbeScope() {
  g_acct_kernel = saved_kernel_;
  g_acct_thread = saved_thread_;
  g_frame_probe = saved_probe_;
}

size_t ProbeFrameSize(KTask (*fn)(SysCtx&)) {
  FrameProbeScope probe;
  SysCtx dummy;
  {
    // initial_suspend is suspend_always: this allocates the frame without
    // running the body, and the temporary's destructor frees it.
    KTask t = fn(dummy);
  }
  return probe.bytes();
}

void* KTask::promise_type::operator new(std::size_t n) {
  if (g_frame_probe != nullptr) {
    *g_frame_probe = n;
  }
  if (g_acct_kernel != nullptr) {
    g_acct_kernel->AccountFrameAlloc(g_acct_thread, n);
  }
  return std::malloc(n);
}

void KTask::promise_type::operator delete(void* p, std::size_t n) {
  if (g_acct_kernel != nullptr) {
    g_acct_kernel->AccountFrameFree(g_acct_thread, n);
  }
  std::free(p);
}

void KTask::promise_type::unhandled_exception() {
  // Kernel handlers are exception-free by construction; an escape here is a
  // bug, and continuing would corrupt kernel state.
  std::fprintf(stderr, "fluke: exception escaped a kernel operation\n");
  std::terminate();
}

// ---------------------------------------------------------------------------
// BlockAwaiter: park the thread. What happens to the coroutine frame is the
// dispatcher's (execution model's) decision.
// ---------------------------------------------------------------------------

void BlockAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  Thread* t = ctx->thread;
  Kernel* k = ctx->kernel;
  k->Charge(k->costs.wait_enqueue);
  k->ChargeFpLocks();  // wait-queue lock
  t->resume_point = h;
  t->op_status = KStatus::kBlocked;
  t->run_state = ThreadRun::kBlocked;
  if (t->block_kind == BlockKind::kNone) {
    t->block_kind = BlockKind::kWaitQueue;
  }
  if (queue != nullptr) {
    queue->Enqueue(t);
  }
  // Returning (void) hands control back to the dispatcher's resume() call.
}

// ---------------------------------------------------------------------------
// WorkAwaiter: charge kernel work; an FP preemption opportunity.
// ---------------------------------------------------------------------------

bool WorkAwaiter::await_ready() noexcept {
  Kernel* k = ctx->kernel;
  k->Charge(cycles);
  if (k->cfg.preempt != PreemptMode::kFull) {
    return true;
  }
  // Fully preemptible kernel: every work quantum is an interrupt window.
  k->PollInterrupts();
  return !k->PreemptPending(ctx->thread);
}

void WorkAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  Thread* t = ctx->thread;
  t->resume_point = h;
  t->op_status = KStatus::kPreempted;
  // The dispatcher requeues the thread; FP exists only in the process model,
  // so the frame is retained and resumed mid-handler later.
}

// ---------------------------------------------------------------------------
// PreemptPointAwaiter: the PP configurations' explicit preemption point
// (paper: a single point on the IPC data-copy path, checked every 8 KiB).
// ---------------------------------------------------------------------------

bool PreemptPointAwaiter::await_ready() noexcept {
  Kernel* k = ctx->kernel;
  k->Charge(k->costs.preempt_point_check);
  if (k->cfg.preempt != PreemptMode::kPartial) {
    return true;  // NP ignores the point; FP already preempts at Work()
  }
  // The explicit preemption point: poll pending interrupts, yield if a
  // higher-priority thread became runnable.
  k->PollInterrupts();
  return !k->PreemptPending(ctx->thread);
}

void PreemptPointAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  Thread* t = ctx->thread;
  t->resume_point = h;
  t->op_status = KStatus::kPreempted;
  // Process model: frame kept, resumed at this point later.
  // Interrupt model: the dispatcher destroys the frame; the committed user
  // registers restart the operation where it left off.
}

}  // namespace fluke
