#include "src/kern/profile.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "src/api/abi.h"

namespace fluke {
namespace {

std::string SysKey(uint32_t sys) { return std::string("sys:") + SysName(sys); }

// A stack entry on a thread's in-kernel class stack.
struct StackEntry {
  TraceKind kind;  // kSyscallEnter or kFaultRemedy
  std::string key;
};

struct OpenInterval {
  Time t0;
  std::string key;
};

}  // namespace

ProfileReport BuildProfile(const std::vector<TraceEvent>& events, Time end_ns, uint64_t dropped) {
  ProfileReport rep;
  rep.total_ns = end_ns;
  rep.events = events.size();
  rep.dropped = dropped;

  std::unordered_map<std::string, size_t> index;
  auto row = [&](const std::string& key) -> ProfileRow& {
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, rep.rows.size()).first;
      rep.rows.push_back(ProfileRow{key});
    }
    return rep.rows[it->second];
  };

  std::unordered_map<uint64_t, std::vector<StackEntry>> stacks;  // per-tid
  std::unordered_map<uint64_t, OpenInterval> open_blocks;        // span id -> start
  std::unordered_map<uint64_t, Time> open_remedies;              // span id -> start
  uint64_t cur_tid = 0;  // 0 until the first context switch ("boot")
  int idle_depth = 0;

  // Attribution class for the interval starting at the current event.
  auto current_class = [&]() -> std::string {
    if (idle_depth > 0) {
      return "idle";
    }
    if (cur_tid == 0) {
      return "boot";
    }
    const auto it = stacks.find(cur_tid);
    if (it != stacks.end() && !it->second.empty()) {
      return it->second.back().key;
    }
    return "user";
  };

  // Pops the topmost entry of `kind` from tid's stack (and anything pushed
  // above it whose end event was lost to the ring).
  auto pop_kind = [&](uint64_t tid, TraceKind kind) {
    auto it = stacks.find(tid);
    if (it == stacks.end()) {
      return;
    }
    auto& st = it->second;
    for (size_t i = st.size(); i > 0; --i) {
      if (st[i - 1].kind == kind) {
        st.resize(i - 1);
        return;
      }
    }
  };

  // Applies event state, then attributes [e.when, next_when) to the class
  // active after the event.
  auto apply = [&](const TraceEvent& e) {
    switch (e.kind) {
      case TraceKind::kContextSwitch:
        cur_tid = e.thread_id;
        break;
      case TraceKind::kIdle:
        if (e.phase == TracePhase::kBegin) {
          ++idle_depth;
        } else if (e.phase == TracePhase::kEnd && idle_depth > 0) {
          --idle_depth;
        }
        break;
      case TraceKind::kSyscallEnter:
        if (e.phase == TracePhase::kBegin) {
          ProfileRow& r = row(SysKey(e.a));
          ++r.count;
          if (e.b == 1) {
            ++r.restarts;
          }
          stacks[e.thread_id].push_back(StackEntry{TraceKind::kSyscallEnter, SysKey(e.a)});
        }
        break;
      case TraceKind::kSyscallExit:
        pop_kind(e.thread_id, TraceKind::kSyscallEnter);
        break;
      case TraceKind::kSyscallRestart:
        ++row(SysKey(e.a)).restarts;
        break;
      case TraceKind::kBlock:
        if (e.phase == TracePhase::kBegin && e.span_id != 0) {
          open_blocks[e.span_id] = OpenInterval{e.when, SysKey(e.a)};
        }
        break;
      case TraceKind::kWake:
        if (e.phase == TracePhase::kEnd) {
          const auto it = open_blocks.find(e.span_id);
          if (it != open_blocks.end()) {
            row(it->second.key).blocked_ns += e.when - it->second.t0;
            open_blocks.erase(it);
          }
        }
        break;
      case TraceKind::kFaultRemedy:
        if (e.phase == TracePhase::kBegin) {
          open_remedies[e.span_id] = e.when;
          stacks[e.thread_id].push_back(StackEntry{TraceKind::kFaultRemedy, "fault:remedy"});
        } else if (e.phase == TracePhase::kEnd) {
          pop_kind(e.thread_id, TraceKind::kFaultRemedy);
          const auto it = open_remedies.find(e.span_id);
          if (it != open_remedies.end()) {
            // End-code 0 is a soft resolve; 2 is a keeper reply (hard);
            // anything else is a cancelled/failed remedy.
            const char* cls = e.b == 0 ? "fault:soft" : e.b == 2 ? "fault:hard" : "fault:other";
            ProfileRow& r = row(cls);
            r.remedy_ns += e.when - it->second;
            ++r.count;
            open_remedies.erase(it);
          }
        }
        break;
      case TraceKind::kThreadExit:
        stacks.erase(e.thread_id);
        break;
      default:
        break;
    }
  };

  if (!events.empty() && events.front().when > 0) {
    row("boot").cpu_ns += events.front().when;
  }
  for (size_t i = 0; i < events.size(); ++i) {
    apply(events[i]);
    const Time t0 = events[i].when;
    const Time t1 = i + 1 < events.size() ? events[i + 1].when : end_ns;
    if (t1 > t0) {
      row(current_class()).cpu_ns += t1 - t0;
    }
  }
  if (events.empty() && end_ns > 0) {
    row("boot").cpu_ns += end_ns;
  }

  for (const ProfileRow& r : rep.rows) {
    rep.accounted_ns += r.cpu_ns;
  }
  std::sort(rep.rows.begin(), rep.rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              return a.cpu_ns != b.cpu_ns ? a.cpu_ns > b.cpu_ns : a.key < b.key;
            });
  return rep;
}

std::string RenderProfile(const ProfileReport& p) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %12s %6s %12s %12s %8s %8s\n", "class", "cpu(us)", "%",
                "blocked(us)", "remedy(us)", "count", "restarts");
  out += line;
  const double total = p.total_ns > 0 ? static_cast<double>(p.total_ns) : 1.0;
  for (const ProfileRow& r : p.rows) {
    std::snprintf(line, sizeof(line), "%-28s %12.3f %5.1f%% %12.3f %12.3f %8llu %8llu\n",
                  r.key.c_str(), static_cast<double>(r.cpu_ns) / kNsPerUs,
                  100.0 * static_cast<double>(r.cpu_ns) / total,
                  static_cast<double>(r.blocked_ns) / kNsPerUs,
                  static_cast<double>(r.remedy_ns) / kNsPerUs,
                  static_cast<unsigned long long>(r.count),
                  static_cast<unsigned long long>(r.restarts));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-28s %12.3f 100.0%% (%llu events%s)\n", "total",
                static_cast<double>(p.accounted_ns) / kNsPerUs,
                static_cast<unsigned long long>(p.events),
                p.dropped > 0 ? ", ring truncated" : "");
  out += line;
  return out;
}

uint64_t TraceDigest(const std::vector<TraceEvent>& events) {
  uint64_t h = 14695981039346656037ull;
  const uint64_t prime = 1099511628211ull;
  auto mix = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= prime;
    }
  };
  for (const TraceEvent& e : events) {
    mix(e.when);
    mix(e.span_id);
    mix(e.thread_id);
    mix(static_cast<uint64_t>(e.kind) | (static_cast<uint64_t>(e.phase) << 8));
    mix((static_cast<uint64_t>(e.a) << 32) | e.b);
  }
  mix(events.size());
  return h;
}

}  // namespace fluke
