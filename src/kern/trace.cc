#include "src/kern/trace.h"

#include <cstdio>

#include "src/api/abi.h"

namespace fluke {

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kSyscallEnter:
      return "sys-enter";
    case TraceKind::kSyscallExit:
      return "sys-exit";
    case TraceKind::kSyscallRestart:
      return "sys-restart";
    case TraceKind::kContextSwitch:
      return "switch";
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kWake:
      return "wake";
    case TraceKind::kSoftFault:
      return "soft-fault";
    case TraceKind::kHardFault:
      return "hard-fault";
    case TraceKind::kPreempt:
      return "preempt";
    case TraceKind::kThreadExit:
      return "thread-exit";
  }
  return "?";
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  if (next_ <= events_.size()) {
    out = events_;
  } else {
    const size_t head = next_ % capacity_;
    out.insert(out.end(), events_.begin() + static_cast<long>(head), events_.end());
    out.insert(out.end(), events_.begin(), events_.begin() + static_cast<long>(head));
  }
  return out;
}

std::string TraceBuffer::Dump() const {
  std::string out;
  char line[160];
  for (const TraceEvent& e : Snapshot()) {
    const char* detail = "";
    switch (e.kind) {
      case TraceKind::kSyscallEnter:
      case TraceKind::kSyscallExit:
      case TraceKind::kSyscallRestart:
        detail = SysName(e.a);
        break;
      default:
        break;
    }
    std::snprintf(line, sizeof(line), "%12.3fus t%-4llu %-12s a=0x%x b=0x%x %s\n",
                  static_cast<double>(e.when) / kNsPerUs,
                  static_cast<unsigned long long>(e.thread_id), TraceKindName(e.kind), e.a, e.b,
                  detail);
    out += line;
  }
  return out;
}

}  // namespace fluke
