#include "src/kern/trace.h"

#include <cstdio>

#include "src/api/abi.h"

namespace fluke {

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kSyscallEnter:
      return "sys-enter";
    case TraceKind::kSyscallExit:
      return "sys-exit";
    case TraceKind::kSyscallRestart:
      return "sys-restart";
    case TraceKind::kContextSwitch:
      return "switch";
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kWake:
      return "wake";
    case TraceKind::kSoftFault:
      return "soft-fault";
    case TraceKind::kHardFault:
      return "hard-fault";
    case TraceKind::kPreempt:
      return "preempt";
    case TraceKind::kThreadExit:
      return "thread-exit";
    case TraceKind::kIpcChunk:
      return "ipc-chunk";
    case TraceKind::kIpcPageLend:
      return "page-lend";
    case TraceKind::kIpcFastHandoff:
      return "fast-handoff";
    case TraceKind::kFaultInject:
      return "fault-inject";
    case TraceKind::kCheckpoint:
      return "checkpoint";
    case TraceKind::kFaultRemedy:
      return "fault-remedy";
    case TraceKind::kIdle:
      return "idle";
    case TraceKind::kIpcFlow:
      return "ipc-flow";
    case TraceKind::kCkptMark:
      return "ckpt-mark";
    case TraceKind::kCkptDrain:
      return "ckpt-drain";
    case TraceKind::kCkptSave:
      return "ckpt-save";
  }
  return "?";
}

namespace {
const char* PhaseTag(TracePhase p) {
  switch (p) {
    case TracePhase::kInstant:
      return " ";
    case TracePhase::kBegin:
      return "B";
    case TracePhase::kEnd:
      return "E";
    case TracePhase::kFlowOut:
      return ">";
    case TracePhase::kFlowIn:
      return "<";
  }
  return "?";
}
}  // namespace

void TraceBuffer::SetCapacity(size_t capacity) {
  size_t cap = 2;
  while (cap < capacity) {
    cap <<= 1;
  }
  capacity_ = cap;
  mask_ = cap - 1;
  events_.clear();
  events_.reserve(cap);
  next_ = 0;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  if (next_ <= events_.size()) {
    out = events_;
  } else {
    const size_t head = next_ & mask_;
    out.insert(out.end(), events_.begin() + static_cast<long>(head), events_.end());
    out.insert(out.end(), events_.begin(), events_.begin() + static_cast<long>(head));
  }
  return out;
}

std::string TraceBuffer::Dump() const {
  std::string out;
  char line[160];
  if (dropped() > 0) {
    std::snprintf(line, sizeof(line), "... %llu earlier events dropped by the ring ...\n",
                  static_cast<unsigned long long>(dropped()));
    out += line;
  }
  for (const TraceEvent& e : Snapshot()) {
    const char* detail = "";
    switch (e.kind) {
      case TraceKind::kSyscallEnter:
      case TraceKind::kSyscallExit:
      case TraceKind::kSyscallRestart:
      case TraceKind::kBlock:
        detail = SysName(e.a);
        break;
      default:
        break;
    }
    std::snprintf(line, sizeof(line), "%12.3fus t%-4llu %s %-12s a=0x%x b=0x%x %s\n",
                  static_cast<double>(e.when) / kNsPerUs,
                  static_cast<unsigned long long>(e.thread_id), PhaseTag(e.phase),
                  TraceKindName(e.kind), e.a, e.b, detail);
    out += line;
  }
  return out;
}

}  // namespace fluke
