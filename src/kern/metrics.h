// Virtual-time metrics sampler: periodic counter/histogram snapshots.
//
// Totals (--stats-json) tell you where a run ended up; this shows the
// trajectory *within* the run -- the connect storm, the steady state, the
// wakeup sweep. fluke_run slices its dispatch loop at --metrics-every=NS
// boundaries of virtual time (the same slicing --ckpt-every uses) and
// appends one row per boundary to --metrics-out=FILE.
//
// Two formats, chosen by extension: .csv (header + one row per sample) and
// .json ({"schema":1,"interval_ns":...,"columns":[...],"samples":[[...]]}).
// Both are ingested by tools/bench_report.py --metrics. Rows are cumulative
// counters (not deltas), so consumers can difference adjacent rows without
// losing the first interval.
//
// Sampling is host-side only: it never charges virtual time, so a sampled
// run reaches the same states at the same virtual instants as an unsampled
// one (MP epoch boundaries may differ across *differently sliced* runs, but
// same-flag runs stay bit-deterministic).

#ifndef SRC_KERN_METRICS_H_
#define SRC_KERN_METRICS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/hal/clock.h"

namespace fluke {

class Kernel;

class MetricsSampler {
 public:
  MetricsSampler() = default;
  ~MetricsSampler();
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  // Opens `path` (.json => JSON, anything else CSV) for an every-
  // `interval_ns` series and writes the header.
  bool Open(const std::string& path, Time interval_ns);

  // Appends one row snapshotting the kernel's counters at k.clock.now().
  void Sample(const Kernel& k);

  // Finalizes the file (closes the JSON arrays). Returns false on I/O error.
  bool Close();

  bool open() const { return f_ != nullptr; }
  Time interval_ns() const { return interval_ns_; }
  uint64_t samples() const { return samples_; }
  // The next virtual instant a sample is due (for run-loop slicing).
  Time next_due(Time now) const {
    return now - (now % interval_ns_) + interval_ns_;
  }

 private:
  std::FILE* f_ = nullptr;
  bool json_ = false;
  Time interval_ns_ = 0;
  uint64_t samples_ = 0;
};

}  // namespace fluke

#endif  // SRC_KERN_METRICS_H_
