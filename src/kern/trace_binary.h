// Compact binary trace format ("FBT"): the full-fidelity event stream at
// c1m scale.
//
// The JSON exporter renders the ring snapshot, so a 100k-thread or MP run
// either drops events or pays for a gigantic ring plus ~100 bytes of text
// per event. This writer instead streams every pushed event (attached as
// the TraceBuffer's sink) into varint-packed records, so the on-disk cost
// is a few bytes per event and the ring can stay small. The existing JSON
// tooling keeps working through the converter (ConvertToChromeJson /
// tools/trace_convert), which reproduces trace_export output byte for byte.
//
// Wire format (all integers little-endian or LEB128 varints):
//
//   file   := magic "FBT1" | u8 version(=1) | u8 reserved[3] | chunk*
//   chunk  := u8 type | u32 count | u32 payload_len | u32 crc32(payload)
//             | payload[payload_len]
//
//   type 'S' (string table, once, first): count interned entries, each
//            varint id | varint len | bytes. Ids 0..N are TraceKind names;
//            0x100+sys are syscall names. Self-describing: a reader needs
//            no kernel headers to render names.
//   type 'E' (events): count events, group-varint packed. Per event:
//            u8     kind | phase<<5
//            u16le  desc         (five 3-bit length codes, LSB-first:
//                                 delta_when, thread_id, span_id, a, b;
//                                 code 0..6 = that many bytes, 7 = 8 bytes)
//            then the five fields back to back, each little-endian,
//            truncated to its coded length:
//              delta_when  (vs previous event in chunk; first is absolute --
//                           the encoder resets at chunk boundaries so chunks
//                           decode standalone)
//              thread_id
//              span_id     (0 for instants)
//              a
//              b
//            The length prefix lives in a fixed-size descriptor instead of
//            LEB128 continuation bits so the encoder is branch-free on the
//            tracing hot path; a typical event is ~8-10 bytes either way.
//   type 'M' (trailer metadata, once, last): count thread-name entries.
//            varint end_ns | varint total_recorded | varint dropped, then
//            per thread varint tid | varint len | bytes.
//
// Every chunk carries its own CRC-32 (IEEE, the ckpt_image polynomial) so a
// truncated or corrupt postmortem bundle fails loudly at the damaged chunk
// instead of decoding garbage.

#ifndef SRC_KERN_TRACE_BINARY_H_
#define SRC_KERN_TRACE_BINARY_H_

#include <bit>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/kern/trace.h"

namespace fluke {

class Kernel;

// --- Streaming writer -------------------------------------------------------

class TraceBinaryWriter : public TraceSink {
 public:
  TraceBinaryWriter() = default;
  ~TraceBinaryWriter() override;
  TraceBinaryWriter(const TraceBinaryWriter&) = delete;
  TraceBinaryWriter& operator=(const TraceBinaryWriter&) = delete;

  // Opens `path`, writes the file header and the string-table chunk.
  bool Open(const std::string& path);

  // Appends one event to the current chunk; seals and writes the chunk when
  // it reaches the target size. This is the hot path: five branch-free
  // group-varint field stores into a preallocated buffer.
  void OnEvent(const TraceEvent& e) override {
    if (buf_used_ + kMaxEventBytes > kChunkBytes) {
      SealChunk();
    }
    uint8_t* const base = buf_ + buf_used_;
    base[0] = static_cast<uint8_t>(static_cast<uint8_t>(e.kind) |
                                   (static_cast<uint8_t>(e.phase) << 5));
    uint32_t desc = 0;
    uint8_t* q = base + 3;
    q = PutField(q, e.when - prev_when_, &desc, 0);
    prev_when_ = e.when;
    q = PutField(q, e.thread_id, &desc, 3);
    q = PutField(q, e.span_id, &desc, 6);
    q = PutField(q, e.a, &desc, 9);
    q = PutField(q, e.b, &desc, 12);
    base[1] = static_cast<uint8_t>(desc);
    base[2] = static_cast<uint8_t>(desc >> 8);
    buf_used_ = static_cast<size_t>(q - buf_);
    ++chunk_count_;
    ++events_written_;
  }

  // Seals the final event chunk, writes the metadata trailer and closes the
  // file. `thread_names` are (tid, name) pairs for the converter's thread
  // metadata; `end_ns`/`total`/`dropped` mirror ExportChromeTrace's inputs.
  bool Finish(Time end_ns, uint64_t total, uint64_t dropped,
              const std::vector<std::pair<uint64_t, std::string>>& thread_names);

  bool open() const { return f_ != nullptr; }
  uint64_t events_written() const { return events_written_; }
  uint64_t chunks_written() const { return chunks_written_; }
  uint64_t bytes_written() const { return bytes_written_; }

  // Group-varint field store: writes all 8 little-endian bytes of `v`
  // unconditionally (kMaxEventBytes guarantees headroom), records the value's
  // minimal byte length as a 3-bit code at `shift` in *desc, and advances by
  // that length. Length 7 is never coded -- code 7 means 8 bytes -- so the
  // decoder's mapping is `len = code == 7 ? 8 : code`. No branches, no
  // per-byte continuation loop.
  static uint8_t* PutField(uint8_t* q, uint64_t v, uint32_t* desc, int shift) {
    q[0] = static_cast<uint8_t>(v);
    q[1] = static_cast<uint8_t>(v >> 8);
    q[2] = static_cast<uint8_t>(v >> 16);
    q[3] = static_cast<uint8_t>(v >> 24);
    q[4] = static_cast<uint8_t>(v >> 32);
    q[5] = static_cast<uint8_t>(v >> 40);
    q[6] = static_cast<uint8_t>(v >> 48);
    q[7] = static_cast<uint8_t>(v >> 56);
    const unsigned bytes = (static_cast<unsigned>(std::bit_width(v)) + 7u) >> 3;  // 0..8
    const unsigned code = bytes < 7u ? bytes : 7u;
    *desc |= code << shift;
    return q + (bytes < 7u ? bytes : 8u);
  }

 private:
  // 1 packed byte + 2 descriptor bytes + 5 fields at <=8 bytes each (43),
  // rounded up. The encoder's unconditional 8-byte stores may overshoot the
  // consumed length by up to 7 bytes; this headroom covers that too.
  static constexpr size_t kMaxEventBytes = 64;
  static constexpr size_t kChunkBytes = 64 * 1024;

  void SealChunk();
  void WriteChunk(uint8_t type, uint32_t count, const uint8_t* payload, size_t len);

  std::FILE* f_ = nullptr;
  uint8_t buf_[kChunkBytes];
  size_t buf_used_ = 0;
  uint32_t chunk_count_ = 0;
  Time prev_when_ = 0;
  uint64_t events_written_ = 0;
  uint64_t chunks_written_ = 0;
  uint64_t bytes_written_ = 0;
};

// --- Reader -----------------------------------------------------------------

struct TraceBinaryData {
  std::vector<TraceEvent> events;
  std::map<uint64_t, std::string> strings;  // interned id -> name
  std::vector<std::pair<uint64_t, std::string>> thread_names;
  Time end_ns = 0;
  uint64_t total_recorded = 0;
  uint64_t dropped = 0;
  bool has_trailer = false;
};

// Parses an FBT file. Returns false and sets `error` on malformed input
// (bad magic/version, truncated chunk, CRC mismatch, varint overrun).
bool ReadTraceBinary(const std::string& path, TraceBinaryData* out, std::string* error);

// Renders a parsed FBT file as the exact Chrome/Perfetto JSON that
// --trace-out would have produced for the same events (byte-identical when
// the ring did not drop: the digest-equality CI leg relies on this).
std::string ConvertToChromeJson(const TraceBinaryData& data);

// One-call convenience for postmortem bundles: writes header, string table,
// a snapshot's events and the trailer to `path`.
bool WriteTraceBinarySnapshot(const std::string& path, const std::vector<TraceEvent>& events,
                              Time end_ns, uint64_t total, uint64_t dropped,
                              const std::vector<std::pair<uint64_t, std::string>>& thread_names);

// The kernel's thread list rendered the way trace_export names threads
// ("name#id"), for writers that stream from a live kernel.
std::vector<std::pair<uint64_t, std::string>> TraceThreadNames(const Kernel& k);

}  // namespace fluke

#endif  // SRC_KERN_TRACE_BINARY_H_
