// Software TLB: a per-space direct-mapped translation cache.
//
// Every simulated user load/store used to walk the space's page-table
// unordered_map; this cache keeps the last translation per index so the hot
// path is an array index, a tag compare, and a protection mask. Entries
// cache {host frame pointer, effective protection} for one virtual page.
//
// Correctness contract (see DESIGN.md "Software TLB and translation
// caching"): an entry may only exist while it exactly mirrors the space's
// page table, so every PTE mutation -- MapPage, UnmapPage (including the
// remap done by soft-fault resolution) and space teardown -- invalidates
// the affected entry. This is the software analog of an x86 TLB shootdown:
// a stale translation can never survive an unmap, a remap to a different
// frame, or a protection change. The TLB is pure host-side caching; it
// charges no virtual time and must never change simulated results.

#ifndef SRC_KERN_TLB_H_
#define SRC_KERN_TLB_H_

#include <cstdint>

#include "src/api/abi.h"

namespace fluke {

// Power of two so the index is a mask. 64 entries cover 256 KiB of working
// set, comfortably more than the IPC buffers and user loops in the benches.
inline constexpr uint32_t kTlbEntries = 64;
// Virtual page numbers are at most 2^20 - 1 (32-bit vaddr, 4 KiB pages), so
// an all-ones tag can never match a real page.
inline constexpr uint32_t kTlbInvalidTag = 0xFFFFFFFFu;

struct TlbEntry {
  uint32_t tag = kTlbInvalidTag;  // virtual page number
  uint32_t prot = kProtNone;      // protection copied from the PTE
  uint8_t* data = nullptr;        // host pointer to the frame's first byte
};

class Tlb {
 public:
  // Hot-path lookup: returns the entry slot for `page` (caller checks tag).
  TlbEntry& Slot(uint32_t page) { return entries_[page & (kTlbEntries - 1)]; }
  const TlbEntry& Slot(uint32_t page) const {
    return entries_[page & (kTlbEntries - 1)];
  }

  void Fill(uint32_t page, uint32_t prot, uint8_t* data) {
    TlbEntry& e = Slot(page);
    e.tag = page;
    e.prot = prot;
    e.data = data;
  }

  // Drops the translation for `page` if cached. Returns true if an entry
  // was actually discarded (for flush accounting).
  bool InvalidatePage(uint32_t page) {
    TlbEntry& e = Slot(page);
    if (e.tag != page) {
      return false;
    }
    e.tag = kTlbInvalidTag;
    e.data = nullptr;
    e.prot = kProtNone;
    return true;
  }

  // Drops every translation; returns how many live entries were discarded.
  uint32_t FlushAll() {
    uint32_t discarded = 0;
    for (TlbEntry& e : entries_) {
      if (e.tag != kTlbInvalidTag) {
        ++discarded;
      }
      e.tag = kTlbInvalidTag;
      e.data = nullptr;
      e.prot = kProtNone;
    }
    return discarded;
  }

 private:
  TlbEntry entries_[kTlbEntries];
};

}  // namespace fluke

#endif  // SRC_KERN_TLB_H_
