// Legacy (user-mode-in-kernel-space) thread support -- paper section 5.6.
//
// Fluke runs process-model legacy code (device drivers) as ordinary
// user-mode threads whose address space aliases the kernel's. Privileged
// operations are "exported from the core kernel as pseudo-system calls only
// available to these special pseudo-kernel threads". These entrypoints are
// deliberately NOT part of the public 107-call API of Table 1; a
// non-legacy thread invoking them gets kFlukeErrProtection.

#ifndef SRC_KERN_LEGACY_H_
#define SRC_KERN_LEGACY_H_

#include <cstdint>

namespace fluke {

inline constexpr uint32_t kPsysBase = 1000;

enum PSys : uint32_t {
  // disk_submit(B = sector, C = sectors, D = write flag) -> B = request id.
  kPsysDiskSubmit = kPsysBase + 0,
  // kstat(B = counter index) -> B = value. Counter indices below.
  kPsysKstat = kPsysBase + 1,
  // console_flush(): drops pending console input (driver reset path).
  kPsysConsoleFlush = kPsysBase + 2,
  kPsysMax,
};

enum KstatIndex : uint32_t {
  kKstatContextSwitches = 0,
  kKstatSyscalls = 1,
  kKstatSoftFaults = 2,
  kKstatHardFaults = 3,
  kKstatAliveThreads = 4,
};

}  // namespace fluke

#endif  // SRC_KERN_LEGACY_H_
