// Space: an address space plus the objects it holds.
//
// Per the paper, a Space "associates memory and threads". Each space owns a
// handle table (handles are small integers standing in for Fluke's
// virtual-address object handles -- see DESIGN.md), a page table mapping
// virtual pages to physical frames, and a list of Mappings that import
// memory exported by Regions of other spaces. Fault resolution walks the
// mapping hierarchy: a fault whose page can be derived from an ancestor
// space's page table is a SOFT fault; one that bottoms out unresolved is a
// HARD fault delivered as an exception IPC to the space's keeper port
// (a user-mode memory manager), or zero-filled by the kernel inside the
// space's anonymous range when it has no keeper.

#ifndef SRC_KERN_SPACE_H_
#define SRC_KERN_SPACE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/kern/ckpt.h"
#include "src/kern/objects.h"
#include "src/kern/stats.h"
#include "src/kern/tlb.h"
#include "src/mem/phys.h"
#include "src/uvm/interp.h"

namespace fluke {

using Handle = uint32_t;
inline constexpr Handle kInvalidHandle = 0;

struct Pte {
  FrameId frame = kInvalidFrame;
  uint32_t prot = kProtNone;
  // Copy-on-write: the frame is lent between exactly the PTEs that carry
  // this flag (IPC page lending). Any write access must privatize the frame
  // first (Space::CowBreak); cow pages are never cached in the software TLB
  // so the break cannot be bypassed by a cached translation.
  bool cow = false;
  // Owed to an in-progress checkpoint (src/kern/ckpt.h): any mutation must
  // first save the old contents into the checkpoint session
  // (Space::CkptSaveMarked). Marked pages are never cached in the software
  // TLB, so the save cannot be bypassed by a cached translation.
  bool ckpt_marked = false;
  // Written since the last checkpoint mark phase (delta-checkpoint
  // tracking). Defaults to true so fresh mappings are always captured.
  // While dirty tracking is on, clean pages are never cached in the TLB so
  // the first write always reaches the dirty hook.
  bool dirty = true;
};

// Outcome of a soft-fault resolution attempt.
struct SoftFaultResult {
  bool resolved = false;
  int levels_walked = 0;   // mapping-hierarchy depth traversed
  bool zero_filled = false;  // satisfied from the kernel anon range
  // Resolution failed only because frame allocation failed (injected or a
  // genuinely full pool); retrying after backoff may succeed.
  bool out_of_frames = false;
};

class Space final : public KernelObject, public MemoryBus {
 public:
  Space(uint64_t id, PhysMemory* phys) : KernelObject(ObjType::kSpace, id), phys_(phys) {}
  ~Space() override;

  // --- Handle table ---
  Handle Install(std::shared_ptr<KernelObject> obj);
  // Returns the object for a handle, or null if invalid/dead.
  KernelObject* Lookup(Handle h) const;
  // Like Lookup but also returns dead (zombie) objects, e.g. for join.
  KernelObject* LookupAnyState(Handle h) const;
  std::shared_ptr<KernelObject> LookupShared(Handle h) const;
  // Typed lookup; null when the handle is invalid or names a different type.
  template <typename T>
  T* LookupAs(Handle h, ObjType want) const {
    KernelObject* o = Lookup(h);
    return (o != nullptr && o->type() == want) ? static_cast<T*>(o) : nullptr;
  }
  void Uninstall(Handle h);
  size_t handle_count() const;

  // --- Page table ---
  bool PagePresent(uint32_t vaddr) const;
  const Pte* FindPte(uint32_t vaddr) const;
  void MapPage(uint32_t vaddr, FrameId frame, uint32_t prot);
  void UnmapPage(uint32_t vaddr);
  // Host-side convenience: allocate + map + optionally fill a page.
  FrameId ProvidePage(uint32_t vaddr, uint32_t prot = kProtReadWrite);

  // --- Copy-on-write page lending (IPC bulk-transfer fast path) ---
  // Maps the frame backing `from`'s page at src_vaddr into this space at
  // dst_vaddr and marks both PTEs copy-on-write, instead of copying 4 KiB.
  // Returns false (caller must fall back to copying) unless the source page
  // is readable, the destination page is writable, and neither frame is
  // shared through the mapping hierarchy (refcount > 1 without cow). A
  // repeat lend of an already-lent page is a no-op returning true.
  bool SharePageFrom(Space& from, uint32_t src_vaddr, uint32_t dst_vaddr);
  // Breaks copy-on-write at vaddr if set (copying the frame when it is still
  // shared). True if the page is now privately writable-safe; false only on
  // frame exhaustion. No-op (true) when the page is absent or not cow.
  bool EnsurePrivateFrame(uint32_t vaddr);

  // --- Mapping hierarchy ---
  void AddMapping(Mapping* m) { mappings_.push_back(m); }
  void RemoveMapping(Mapping* m);
  const std::vector<Mapping*>& mappings() const { return mappings_; }
  // Tries to resolve a fault at `vaddr` by walking the mapping hierarchy or
  // the anonymous range. On success the PTE is installed.
  SoftFaultResult TryResolveSoft(uint32_t vaddr, bool want_write);

  // Kernel-backed anonymous memory range (zero-fill on demand). A space with
  // a keeper port typically has no anon range, so its faults go to the
  // keeper; the root/manager spaces use anon memory directly.
  void SetAnonRange(uint32_t base, uint32_t size) {
    anon_base_ = base;
    anon_size_ = size;
  }
  bool InAnonRange(uint32_t vaddr) const {
    return vaddr - anon_base_ < anon_size_;
  }

  // --- Keeper (memory manager / exception handler port) ---
  Port* keeper = nullptr;

  // --- Program run by threads of this space (by default) ---
  ProgramRef program;

  // --- Regions exported over this space (maintained by the kernel;
  //     searched by region_search) ---
  std::vector<Region*> regions;

  // This space's handle in its own handle table (space_self).
  uint32_t self_handle = 0;

  // --- MemoryBus (user-instruction and kernel-copy access path) ---
  bool ReadByte(uint32_t vaddr, uint8_t* out, uint32_t* fault_addr) override;
  bool WriteByte(uint32_t vaddr, uint8_t value, uint32_t* fault_addr) override;
  bool ReadWord(uint32_t vaddr, uint32_t* out, uint32_t* fault_addr) override;
  bool WriteWord(uint32_t vaddr, uint32_t value, uint32_t* fault_addr) override;
  Span TranslateSpan(uint32_t vaddr, uint32_t len, uint32_t want_prot) override {
    return TranslateSpanConst(vaddr, len, want_prot);
  }

  // Host-side helpers for tests and workload setup (bypass faulting).
  bool HostRead(uint32_t vaddr, void* out, uint32_t len) const;
  bool HostWrite(uint32_t vaddr, const void* data, uint32_t len);

  // --- Concurrent checkpointing (src/kern/ckpt.h) ---
  // Attaches this space to an in-progress capture session as spaces[index];
  // CkptMark then records every page to capture (all pages, or only dirty
  // ones for a delta) and flips it to checkpoint-CoW. Detach after Finish.
  void CkptAttach(CkptSession* session, uint32_t index) {
    ckpt_session_ = session;
    ckpt_space_index_ = index;
  }
  void CkptDetach() { ckpt_session_ = nullptr; }
  bool CkptAttached() const { return ckpt_session_ != nullptr; }
  // Enables per-page dirty tracking (sticky; delta checkpoints need it from
  // the first full image on). Flushes the TLB so clean pages stop being
  // write-cached.
  void SetDirtyTracking();
  bool dirty_tracking() const { return dirty_track_; }
  // The serial mark phase for this space: appends one CkptPage record per
  // page to capture, sets ckpt_marked, clears dirty. Returns pages marked.
  size_t CkptMark(bool delta);
  // Drains one still-uncaptured record: copies the page and clears its mark.
  void CkptCapturePage(CkptPage& rec);
  // Saves the old contents of a still-marked page into the session record
  // and clears the mark; called from every PTE/content mutation path.
  void CkptSaveMarked(uint32_t page, Pte& pte);

  // Replaces the object a live handle slot points at, preserving the slot
  // number (checkpoint restore: forward references are installed as
  // placeholders and patched once the target exists).
  void ReplaceHandle(Handle h, std::shared_ptr<KernelObject> obj);

  // --- Software TLB (src/kern/tlb.h) ---
  // Wired by Kernel::CreateSpace; counters land in KernelStats::tlb_*.
  void ConfigureTlb(bool enabled, KernelStats* stats) {
    tlb_enabled_ = enabled;
    stats_ = stats;
  }
  void TlbFlushAll();

  PhysMemory* phys() const { return phys_; }
  size_t mapped_pages() const { return pages_.size(); }

  // Page-table generation: bumped on every MapPage/UnmapPage. Callers that
  // cache host pointers across potential suspension points (the IPC bulk
  // copy) revalidate against this instead of re-translating; any mapping or
  // protection change -- including by another thread while the caller was
  // suspended -- changes the generation.
  uint64_t pt_gen() const { return pt_gen_; }

  // Introspection for checkpointing and tests.
  const std::unordered_map<uint32_t, Pte>& page_table() const { return pages_; }
  const std::vector<std::shared_ptr<KernelObject>>& handle_table() const { return handles_; }
  uint32_t anon_base() const { return anon_base_; }
  uint32_t anon_size() const { return anon_size_; }

  // Threads currently bound to this space (maintained by the kernel).
  std::vector<Thread*> threads;

  // --- CPU affinity domain (maintained by Kernel::HomeCpuOf/MergeAffinity;
  //     see kernel.h). Spaces connected by Mappings form a domain homed on
  //     one CPU, so their shared frames are only ever touched by one host
  //     thread during a parallel epoch. aff_rep is a union-find parent
  //     (null = this space is its domain's representative); aff_home and
  //     aff_members are meaningful only on the representative. ---
  Space* aff_rep = nullptr;
  int aff_home = 0;
  std::vector<Space*> aff_members;

 private:
  bool CowBreak(uint32_t vaddr, Pte& pte);
  uint8_t* PageData(uint32_t vaddr, uint32_t want_prot, uint32_t* fault_addr) const;
  Span TranslateSpanConst(uint32_t vaddr, uint32_t len, uint32_t want_prot) const;
  void TlbInvalidatePage(uint32_t page);

  PhysMemory* phys_;
  std::vector<std::shared_ptr<KernelObject>> handles_{nullptr};  // slot 0 invalid
  std::vector<Handle> free_slots_;  // dead handle slots available for reuse
  size_t live_handles_ = 0;         // non-null slots (O(1) handle_count)
  std::unordered_map<uint32_t, Pte> pages_;  // keyed by vaddr >> kPageShift
  std::vector<Mapping*> mappings_;
  uint32_t anon_base_ = 0;
  uint32_t anon_size_ = 0;
  uint64_t pt_gen_ = 0;

  // In-progress checkpoint capture (null when none) and this space's slot in
  // it; see CkptAttach.
  CkptSession* ckpt_session_ = nullptr;
  uint32_t ckpt_space_index_ = 0;
  bool dirty_track_ = false;

  // Translation cache. Mutable: filling it from a read path is caching, not
  // a semantic mutation of the space.
  mutable Tlb tlb_;
  bool tlb_enabled_ = true;
  KernelStats* stats_ = nullptr;  // hit/miss/flush counters (may be null)
};

}  // namespace fluke

#endif  // SRC_KERN_SPACE_H_
