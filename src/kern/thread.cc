#include "src/kern/objects.h"

namespace fluke {

const char* ThreadRunName(ThreadRun s) {
  switch (s) {
    case ThreadRun::kEmbryo:
      return "embryo";
    case ThreadRun::kRunnable:
      return "runnable";
    case ThreadRun::kRunning:
      return "running";
    case ThreadRun::kBlocked:
      return "blocked";
    case ThreadRun::kStopped:
      return "stopped";
    case ThreadRun::kDead:
      return "dead";
  }
  return "?";
}

}  // namespace fluke
