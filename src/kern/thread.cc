#include "src/base/slab.h"
#include "src/kern/objects.h"

namespace fluke {

// Slab-backed kernel objects (see src/base/slab.h). Defined here, where the
// types are complete; the classes are final, so `size` is always the exact
// object size and one arena per type suffices.

void* Thread::operator new(size_t size) {
  (void)size;
  return SlabArena<Thread>::Instance().Allocate();
}
void Thread::operator delete(void* p) { SlabArena<Thread>::Instance().Deallocate(p); }

void* Port::operator new(size_t size) {
  (void)size;
  return SlabArena<Port>::Instance().Allocate();
}
void Port::operator delete(void* p) { SlabArena<Port>::Instance().Deallocate(p); }

void* Reference::operator new(size_t size) {
  (void)size;
  return SlabArena<Reference>::Instance().Allocate();
}
void Reference::operator delete(void* p) {
  SlabArena<Reference>::Instance().Deallocate(p);
}

const char* ThreadRunName(ThreadRun s) {
  switch (s) {
    case ThreadRun::kEmbryo:
      return "embryo";
    case ThreadRun::kRunnable:
      return "runnable";
    case ThreadRun::kRunning:
      return "running";
    case ThreadRun::kBlocked:
      return "blocked";
    case ThreadRun::kStopped:
      return "stopped";
    case ThreadRun::kDead:
      return "dead";
  }
  return "?";
}

}  // namespace fluke
