// Exportable thread state (the atomic API's central artifact).
//
// ThreadState is the *complete* user-visible state of a thread: its general
// registers, PC, the two kernel pseudo-registers, and its scheduling
// priority. Per the paper's correctness requirement, a thread destroyed and
// re-created from this state behaves indistinguishably from the original --
// including threads that were blocked mid-way through multi-stage IPC, whose
// pseudo-registers and rewritten entrypoint register encode the restart
// point.

#ifndef SRC_KERN_STATE_H_
#define SRC_KERN_STATE_H_

#include <cstdint>

#include "src/api/abi.h"

namespace fluke {

struct ThreadState {
  UserRegisters regs;
  uint32_t priority = 4;

  friend bool operator==(const ThreadState&, const ThreadState&) = default;
};

// Serialized layout: 8 GPRs, pc, pr0, pr1, priority.
inline constexpr uint32_t kThreadStateWords = 12;

inline void ThreadStateToWords(const ThreadState& s, uint32_t out[kThreadStateWords]) {
  for (int i = 0; i < kNumGprs; ++i) {
    out[i] = s.regs.gpr[i];
  }
  out[8] = s.regs.pc;
  out[9] = s.regs.pr0;
  out[10] = s.regs.pr1;
  out[11] = s.priority;
}

inline void ThreadStateFromWords(const uint32_t in[kThreadStateWords], ThreadState* s) {
  for (int i = 0; i < kNumGprs; ++i) {
    s->regs.gpr[i] = in[i];
  }
  s->regs.pc = in[8];
  s->regs.pr0 = in[9];
  s->regs.pr1 = in[10];
  s->priority = in[11];
}

}  // namespace fluke

#endif  // SRC_KERN_STATE_H_
