// User-level checkpointing through exportable kernel state.
//
// The paper's motivating application (section 4.1, and Tullmann et al.'s
// "User-level Checkpointing Through Exportable Kernel State"): because every
// thread's complete state is promptly and correctly exportable -- even while
// it is blocked mid-way through a multi-stage system call -- an ordinary
// user-mode process can checkpoint a task, destroy it, re-create it
// (possibly on another kernel: migration), and the result is
// indistinguishable from the original.
//
// Scope: a checkpoint captures one Space -- its threads (full register
// state + priority), its memory pages, its anonymous range, and the
// synchronization objects (mutexes, conds) in its handle table, preserving
// handle numbering so baked-in program immediates stay valid. Live IPC
// connections are not captured (the real Fluke checkpointer quiesces or
// reconstructs connections through user-level protocols; see DESIGN.md).

#ifndef SRC_WORKLOADS_CHECKPOINT_H_
#define SRC_WORKLOADS_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kern/kernel.h"
#include "src/kern/state.h"

namespace fluke {

struct CheckpointImage {
  std::string space_name;
  std::string program_name;
  uint32_t anon_base = 0;
  uint32_t anon_size = 0;

  struct PageImage {
    uint32_t vaddr = 0;
    uint32_t prot = 0;
    std::vector<uint8_t> data;  // kPageSize bytes
  };
  std::vector<PageImage> pages;

  struct ThreadImage {
    ThreadState state;
    std::string program_name;   // resolved through the registry at restore
    bool was_runnable = false;  // runnable or blocked (vs stopped/embryo)
  };
  std::vector<ThreadImage> threads;

  // Handle-table entries, in slot order (slot = index + 1). Restore
  // recreates slots strictly in order so every baked-in handle immediate in
  // the program stays valid. Slots the checkpointer does not understand are
  // recorded as kEmpty and padded with empty References.
  enum class ObjKind : int { kEmpty = 0, kSpaceSelf, kThreadSelf, kMutex, kCond };
  struct ObjImage {
    ObjKind kind = ObjKind::kEmpty;
    int thread_index = -1;  // kThreadSelf: index into `threads`
    bool mutex_locked = false;
    int mutex_owner_thread = -1;  // index into `threads`, or -1
  };
  std::vector<ObjImage> objects;
};

// Captures `space` from `k`. Threads are stopped first (transparent
// rollback: their registers are committed restart points) and left stopped;
// call only when no thread of the space holds a live IPC connection.
CheckpointImage CaptureSpace(Kernel& k, Space& space);

// Recreates the image in `k` (which may be a different kernel -- migration).
// Programs are resolved by name through `programs`. Threads are created
// stopped; `start` resumes those that were runnable.
//
// A malformed image (one DeserializeCheckpoint would reject) or frame
// exhaustion that persists past a bounded retry surfaces as ok=false with
// `error` set -- never an abort. On failure the partially-restored space is
// left in `k` but no thread of it has been started.
struct RestoreResult {
  bool ok = true;
  std::string error;
  std::shared_ptr<Space> space;
  std::vector<Thread*> threads;
};
RestoreResult RestoreSpace(Kernel& k, const CheckpointImage& img,
                           const ProgramRegistry& programs, bool start = true);

// Convenience: destroys every thread of `space` (after capture).
void DestroySpaceThreads(Kernel& k, Space& space);

}  // namespace fluke

#endif  // SRC_WORKLOADS_CHECKPOINT_H_
