// User-level checkpointing through exportable kernel state.
//
// The paper's motivating application (section 4.1, and Tullmann et al.'s
// "User-level Checkpointing Through Exportable Kernel State"): because every
// thread's complete state is promptly and correctly exportable -- even while
// it is blocked mid-way through a multi-stage system call -- an ordinary
// user-mode process can checkpoint a task, destroy it, re-create it
// (possibly on another kernel: migration), and the result is
// indistinguishable from the original.
//
// Scope: a checkpoint captures one Space -- its threads (full register
// state + priority), its memory pages, its anonymous range, and the
// synchronization objects (mutexes, conds) in its handle table, preserving
// handle numbering so baked-in program immediates stay valid. Live IPC
// connections are not captured (the real Fluke checkpointer quiesces or
// reconstructs connections through user-level protocols; see DESIGN.md).

#ifndef SRC_WORKLOADS_CHECKPOINT_H_
#define SRC_WORKLOADS_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kern/kernel.h"
#include "src/kern/state.h"

namespace fluke {

struct CheckpointImage {
  std::string space_name;
  std::string program_name;
  uint32_t anon_base = 0;
  uint32_t anon_size = 0;

  struct PageImage {
    uint32_t vaddr = 0;
    uint32_t prot = 0;
    std::vector<uint8_t> data;  // kPageSize bytes
  };
  std::vector<PageImage> pages;

  struct ThreadImage {
    ThreadState state;
    std::string program_name;   // resolved through the registry at restore
    bool was_runnable = false;  // runnable or blocked (vs stopped/embryo)
  };
  std::vector<ThreadImage> threads;

  // Handle-table entries, in slot order (slot = index + 1). Restore
  // recreates slots strictly in order so every baked-in handle immediate in
  // the program stays valid. Slots the checkpointer does not understand are
  // recorded as kEmpty and padded with empty References.
  enum class ObjKind : int { kEmpty = 0, kSpaceSelf, kThreadSelf, kMutex, kCond };
  struct ObjImage {
    ObjKind kind = ObjKind::kEmpty;
    int thread_index = -1;  // kThreadSelf: index into `threads`
    bool mutex_locked = false;
    int mutex_owner_thread = -1;  // index into `threads`, or -1
  };
  std::vector<ObjImage> objects;
};

// Captures `space` from `k`. Threads are stopped first (transparent
// rollback: their registers are committed restart points) and left stopped;
// call only when no thread of the space holds a live IPC connection.
CheckpointImage CaptureSpace(Kernel& k, Space& space);

// Recreates the image in `k` (which may be a different kernel -- migration).
// Programs are resolved by name through `programs`. Threads are created
// stopped; `start` resumes those that were runnable.
//
// A malformed image (one DeserializeCheckpoint would reject) or frame
// exhaustion that persists past a bounded retry surfaces as ok=false with
// `error` set -- never an abort. On failure the partially-restored space is
// left in `k` but no thread of it has been started.
struct RestoreResult {
  bool ok = true;
  std::string error;
  std::shared_ptr<Space> space;
  std::vector<Thread*> threads;
};
RestoreResult RestoreSpace(Kernel& k, const CheckpointImage& img,
                           const ProgramRegistry& programs, bool start = true);

// Convenience: destroys every thread of `space` (after capture).
void DestroySpaceThreads(Kernel& k, Space& space);

// ---------------------------------------------------------------------------
// Machine-wide images (PR 8: incremental concurrent checkpointing).
//
// A MachineImage captures the whole machine -- every space, every thread
// (with its live IPC-connection TCB fields), and the IPC objects (ports,
// portsets, references) the rpc/c1m workloads wire across spaces. It comes
// in two flavors: full (base_generation == 0, data for every resident page)
// and delta (data only for pages dirtied since the parent image, chained by
// generation number and parent digest -- see workloads/restart_log.h for
// the chain loader).
//
// Deliberate scope limits (checked at capture; structured errors, never
// asserts): single CPU, no Mappings/Regions/keeper ports, no undelivered
// fault IPC (KernelMsg with a victim), no legacy threads. Dead objects in
// handle tables are captured as kEmpty and restored as null References --
// join-on-zombie across a checkpoint is not preserved (DESIGN.md).
// ---------------------------------------------------------------------------

struct MachineImage {
  uint32_t generation = 1;
  // 0 = full image; otherwise the generation of the image this delta chains
  // to (must be generation - 1 when loaded through the restart log).
  uint32_t base_generation = 0;
  uint64_t parent_digest = 0;  // ImageDigest of the serialized parent (delta)
  Time clock_ns = 0;           // virtual time at the capture instant

  enum class ObjKind : int {
    kEmpty = 0,
    kSpaceSelf,
    kThreadSelf,  // thread whose self slot this is (global thread index)
    kThreadRef,   // another thread installed directly (c1m master's handles)
    kMutex,
    kCond,
    kPort,      // port object installed directly (global port key)
    kPortRef,   // Reference to a port (global port key)
    kPortset,   // portset object installed directly (global portset key)
  };
  struct ObjImage {
    ObjKind kind = ObjKind::kEmpty;
    int index = -1;  // thread index / port key / portset key, per kind
    bool mutex_locked = false;
    int mutex_owner_thread = -1;  // global thread index, or -1
  };
  struct ResidentPage {
    uint32_t vaddr = 0;
    uint32_t prot = 0;
  };
  struct SpaceImage {
    std::string name;
    std::string program_name;
    uint32_t anon_base = 0;
    uint32_t anon_size = 0;
    // Every page mapped at the capture instant (delta images need the full
    // directory to represent unmaps; for a full image this equals `pages`).
    std::vector<ResidentPage> resident;
    std::vector<CheckpointImage::PageImage> pages;  // data-carrying pages
    std::vector<ObjImage> objects;                  // handle slots, in order
  };
  std::vector<SpaceImage> spaces;

  struct KMsgImage {
    uint32_t words[8] = {};
    uint32_t len = 0;
    uint32_t badge = 0;
  };
  struct PortImage {
    uint32_t badge = 0;
    std::vector<KMsgImage> kmsgs;  // undelivered kernel-synthesized messages
  };
  std::vector<PortImage> ports;  // keyed by discovery order (space, slot)

  struct PortsetImage {
    std::vector<uint32_t> member_ports;  // port keys, membership order
  };
  std::vector<PortsetImage> portsets;

  struct ThreadImage {
    uint32_t space_index = 0;
    ThreadState state;
    std::string program_name;
    bool was_runnable = false;  // runnable/blocked/running (vs stopped/embryo)
    int ipc_peer = -1;          // global thread index of the connected peer
    bool ipc_is_server = false;
    uint32_t port_badge = 0;
  };
  std::vector<ThreadImage> threads;  // global order: space order, then TCB order

  size_t TotalPages() const {
    size_t n = 0;
    for (const SpaceImage& s : spaces) {
      n += s.pages.size();
    }
    return n;
  }
};

// A concurrent capture in progress. Begin() runs the serial mark phase
// (metadata snapshot + flip every page to checkpoint-CoW) and records the
// modeled pause in stats.ckpt_pause_hist; the caller then keeps running the
// kernel while the dispatch loop drains pages, and calls Finish() once
// done() (or forces completion first with Kernel::CkptDrainAll). Abort()
// detaches without producing an image.
class ConcurrentCkpt {
 public:
  ~ConcurrentCkpt() { Abort(); }

  // `delta` captures only pages dirtied since the previous capture (refused
  // unless this kernel has completed a capture before). `stw` is the
  // stop-the-world cost model: the recorded pause covers copying every page
  // rather than marking it (used by CaptureMachine; the image itself is
  // identical either way).
  bool Begin(Kernel& k, bool delta, std::string* error, bool stw = false);
  bool active() const { return kernel_ != nullptr; }
  bool done() const { return session_.done(); }
  MachineImage Finish();
  void Abort();

 private:
  MachineImage img_;
  CkptSession session_;
  Kernel* kernel_ = nullptr;
  bool delta_ = false;
};

// Stop-the-world machine capture: mark + drain everything at one instant,
// recording the full copy cost as the pause. The resulting image is
// byte-identical to what a ConcurrentCkpt begun at the same instant
// produces after draining -- that equivalence is the concurrent
// checkpointer's correctness witness (tests/ckpt_concurrent_test.cc).
bool CaptureMachine(Kernel& k, bool delta, MachineImage* out, std::string* error);

// Restores a full (merged) machine image into `k`, which must be freshly
// booted. Structured errors, never asserts; on failure partially-restored
// objects remain but no thread has been started.
struct MachineRestoreResult {
  bool ok = true;
  std::string error;
  std::vector<std::shared_ptr<Space>> spaces;
  std::vector<Thread*> threads;  // global order, matching img.threads
};
MachineRestoreResult RestoreMachine(Kernel& k, const MachineImage& img,
                                    const ProgramRegistry& programs, bool start = true);

// Merges a delta chain, oldest first (chain[0] must be a full image), into
// one full image carrying the newest generation's metadata and resident
// set. Returns false with `error` set on a malformed chain (generation gap,
// base/full mismatch). Digest validation is the loader's job
// (workloads/restart_log.h); this checks structure only.
bool MergeImageChain(const std::vector<const MachineImage*>& chain, MachineImage* out,
                     std::string* error);

}  // namespace fluke

#endif  // SRC_WORKLOADS_CHECKPOINT_H_
