// Restart log: write-ahead durability for checkpoint generations.
//
// A checkpointed run appends one fixed-size, CRC-guarded record to the
// restart log for every generation whose image has been fully written to
// the store -- the write-ahead rule is image first, log record second, so a
// crash at ANY boundary leaves the log describing only complete images.
// Recovery scans the log newest-first, loads each candidate generation's
// delta chain (walking base_generation links down to a full image,
// validating every parent digest), and falls back to the next older logged
// generation on any chain error -- a truncated chain, a generation gap, a
// corrupted image. The newest *complete* generation always wins; a partial
// image left by the crash is unreachable because its record was never
// appended (restart-log invariant, DESIGN.md).
//
// The store is pluggable: MemCkptStore for tests (and for corrupting any
// byte of any generation), FileCkptStore for fluke_run's --ckpt-dir.

#ifndef SRC_WORKLOADS_RESTART_LOG_H_
#define SRC_WORKLOADS_RESTART_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/workloads/checkpoint.h"

namespace fluke {

// Minimal blob store: images keyed by name, plus one append-only log blob.
class CkptStore {
 public:
  virtual ~CkptStore() = default;
  // Writes (replacing) the blob `name`. Returns false on I/O failure.
  virtual bool Put(const std::string& name, const std::vector<uint8_t>& bytes) = 0;
  // Reads blob `name`; false if absent or unreadable.
  virtual bool Get(const std::string& name, std::vector<uint8_t>* out) const = 0;
  // Appends to blob `name` (the restart log), creating it if absent.
  virtual bool Append(const std::string& name, const std::vector<uint8_t>& bytes) = 0;
};

class MemCkptStore final : public CkptStore {
 public:
  bool Put(const std::string& name, const std::vector<uint8_t>& bytes) override {
    blobs_[name] = bytes;
    return true;
  }
  bool Get(const std::string& name, std::vector<uint8_t>* out) const override {
    auto it = blobs_.find(name);
    if (it == blobs_.end()) {
      return false;
    }
    *out = it->second;
    return true;
  }
  bool Append(const std::string& name, const std::vector<uint8_t>& bytes) override {
    auto& b = blobs_[name];
    b.insert(b.end(), bytes.begin(), bytes.end());
    return true;
  }
  // Test access: mutate stored bytes in place (corruption injection) and
  // drop blobs (truncated-chain injection).
  std::map<std::string, std::vector<uint8_t>>& blobs() { return blobs_; }

 private:
  std::map<std::string, std::vector<uint8_t>> blobs_;
};

// Files under a directory; Append is an O_APPEND-style read-modify-write.
class FileCkptStore final : public CkptStore {
 public:
  explicit FileCkptStore(std::string dir) : dir_(std::move(dir)) {}
  bool Put(const std::string& name, const std::vector<uint8_t>& bytes) override;
  bool Get(const std::string& name, std::vector<uint8_t>* out) const override;
  bool Append(const std::string& name, const std::vector<uint8_t>& bytes) override;

 private:
  std::string dir_;
};

inline constexpr char kRestartLogName[] = "restart.log";

// One log record: generation, image digest, image size, CRC32 over the
// first 24 bytes. 28 bytes fixed, little-endian. A torn tail (partial
// record) or a record with a bad CRC ends the scan -- everything before it
// is trusted, everything after ignored.
struct RestartRecord {
  uint64_t generation = 0;
  uint64_t digest = 0;
  uint64_t image_size = 0;
};
inline constexpr size_t kRestartRecordBytes = 28;

std::string CkptImageName(uint64_t generation);

// Writes `bytes` as generation `gen`'s image and then appends the log
// record (write-ahead order). Returns false on store failure.
bool CommitGeneration(CkptStore& store, uint64_t gen, const std::vector<uint8_t>& bytes);

// Parses the log into records, stopping cleanly at a torn or corrupt tail.
std::vector<RestartRecord> ReadRestartLog(const CkptStore& store);

// Loads generation `gen`: fetches its image, verifies size + digest against
// `rec`, walks base_generation parent links (each parent must be logged
// with a matching digest), and merges the chain into one full image.
// Structured errors: "truncated delta chain" (a parent image is missing),
// "generation gap" (a delta's base is not the next older logged
// generation), "parent digest mismatch", plus anything DeserializeImage or
// MergeImageChain reports.
bool LoadGeneration(const CkptStore& store, const std::vector<RestartRecord>& log,
                    size_t rec_index, MachineImage* out, std::string* error);

// Recovery: newest logged generation that loads cleanly. Returns false only
// if no logged generation is recoverable; `error` then holds the newest
// generation's failure.
bool RecoverLatest(const CkptStore& store, MachineImage* out, uint64_t* generation,
                   std::string* error);

}  // namespace fluke

#endif  // SRC_WORKLOADS_RESTART_LOG_H_
