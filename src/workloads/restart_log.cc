#include "src/workloads/restart_log.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/workloads/ckpt_image.h"

namespace fluke {

namespace {

// Same reflected CRC-32 the image streams use (ckpt_image.cc); duplicated
// here because the log guards its own records independently of any image.
uint32_t Crc32(const uint8_t* data, size_t len) {
  static uint32_t table[256];
  static bool ready = false;
  if (!ready) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    ready = true;
  }
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

bool FileCkptStore::Put(const std::string& name, const std::vector<uint8_t>& bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  std::ofstream f(std::filesystem::path(dir_) / name, std::ios::binary | std::ios::trunc);
  if (!f) {
    return false;
  }
  f.write(reinterpret_cast<const char*>(bytes.data()), static_cast<long>(bytes.size()));
  return f.good();
}

bool FileCkptStore::Get(const std::string& name, std::vector<uint8_t>* out) const {
  std::ifstream f(std::filesystem::path(dir_) / name, std::ios::binary);
  if (!f) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
  return true;
}

bool FileCkptStore::Append(const std::string& name, const std::vector<uint8_t>& bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  std::ofstream f(std::filesystem::path(dir_) / name, std::ios::binary | std::ios::app);
  if (!f) {
    return false;
  }
  f.write(reinterpret_cast<const char*>(bytes.data()), static_cast<long>(bytes.size()));
  return f.good();
}

std::string CkptImageName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%llu.img", static_cast<unsigned long long>(generation));
  return buf;
}

bool CommitGeneration(CkptStore& store, uint64_t gen, const std::vector<uint8_t>& bytes) {
  // Write-ahead order: the image must be durable before the log names it.
  if (!store.Put(CkptImageName(gen), bytes)) {
    return false;
  }
  std::vector<uint8_t> rec;
  rec.reserve(kRestartRecordBytes);
  PutU64(&rec, gen);
  PutU64(&rec, ImageDigest(bytes));
  PutU64(&rec, bytes.size());
  const uint32_t crc = Crc32(rec.data(), rec.size());
  for (int i = 0; i < 4; ++i) {
    rec.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return store.Append(kRestartLogName, rec);
}

std::vector<RestartRecord> ReadRestartLog(const CkptStore& store) {
  std::vector<RestartRecord> out;
  std::vector<uint8_t> raw;
  if (!store.Get(kRestartLogName, &raw)) {
    return out;
  }
  for (size_t off = 0; off + kRestartRecordBytes <= raw.size(); off += kRestartRecordBytes) {
    const uint8_t* p = raw.data() + off;
    if (Crc32(p, 24) != GetU32(p + 24)) {
      break;  // corrupt record: trust nothing at or after it
    }
    out.push_back({GetU64(p), GetU64(p + 8), GetU64(p + 16)});
  }
  return out;  // a torn tail (partial record) is simply never reached
}

bool LoadGeneration(const CkptStore& store, const std::vector<RestartRecord>& log,
                    size_t rec_index, MachineImage* out, std::string* error) {
  if (rec_index >= log.size()) {
    *error = "no such log record";
    return false;
  }
  // Newest record for each generation (a re-run could re-log one).
  auto find_record = [&log](uint64_t gen, RestartRecord* rec) {
    bool found = false;
    for (const RestartRecord& r : log) {
      if (r.generation == gen) {
        *rec = r;
        found = true;
      }
    }
    return found;
  };
  auto fetch = [&](const RestartRecord& rec, std::vector<uint8_t>* bytes,
                   MachineImage* img) -> bool {
    if (!store.Get(CkptImageName(rec.generation), bytes)) {
      *error = "truncated delta chain: image for generation " +
               std::to_string(rec.generation) + " is missing";
      return false;
    }
    if (bytes->size() != rec.image_size || ImageDigest(*bytes) != rec.digest) {
      *error = "image digest mismatch for generation " + std::to_string(rec.generation);
      return false;
    }
    if (!DeserializeImage(*bytes, img, error)) {
      return false;
    }
    if (img->generation != rec.generation) {
      *error = "image generation disagrees with the log";
      return false;
    }
    return true;
  };

  // Walk parent links newest-to-oldest, then merge oldest-first.
  std::vector<MachineImage> images;
  std::vector<uint8_t> bytes;
  MachineImage img;
  if (!fetch(log[rec_index], &bytes, &img)) {
    return false;
  }
  uint64_t expect_parent_digest = 0;
  while (true) {
    const bool is_delta = img.base_generation != 0;
    const uint32_t parent_gen = img.base_generation;
    const uint64_t parent_digest = img.parent_digest;
    if (!images.empty() && expect_parent_digest != ImageDigest(bytes)) {
      *error = "parent digest mismatch at generation " + std::to_string(img.generation);
      return false;
    }
    images.push_back(std::move(img));
    if (!is_delta) {
      break;
    }
    if (images.size() > log.size()) {
      *error = "delta chain longer than the log (cycle?)";
      return false;
    }
    RestartRecord prec;
    if (!find_record(parent_gen, &prec)) {
      *error = "generation gap: delta generation " +
               std::to_string(images.back().generation) + " chains to unlogged generation " +
               std::to_string(parent_gen);
      return false;
    }
    expect_parent_digest = parent_digest;
    if (!fetch(prec, &bytes, &img)) {
      return false;
    }
  }

  std::vector<const MachineImage*> chain;
  for (auto it = images.rbegin(); it != images.rend(); ++it) {
    chain.push_back(&*it);
  }
  return MergeImageChain(chain, out, error);
}

bool RecoverLatest(const CkptStore& store, MachineImage* out, uint64_t* generation,
                   std::string* error) {
  const std::vector<RestartRecord> log = ReadRestartLog(store);
  if (log.empty()) {
    *error = "restart log is empty or unreadable";
    return false;
  }
  std::string newest_error;
  for (size_t i = log.size(); i-- > 0;) {
    std::string e;
    if (LoadGeneration(store, log, i, out, &e)) {
      if (generation != nullptr) {
        *generation = log[i].generation;
      }
      return true;
    }
    if (newest_error.empty()) {
      newest_error = std::move(e);
    }
  }
  *error = newest_error;
  return false;
}

}  // namespace fluke
