#include "src/workloads/ckpt_image.h"

#include <algorithm>
#include <cstring>

namespace fluke {

namespace {

// Reflected CRC-32 (IEEE 802.3 polynomial), table built on first use. Guards
// the whole stream: structural fields AND page contents, which the parser's
// bounds checks alone cannot vouch for.
uint32_t Crc32(const uint8_t* data, size_t len) {
  static uint32_t table[256];
  static bool ready = false;
  if (!ready) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    ready = true;
  }
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutStr(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

class Reader {
 public:
  Reader(const std::vector<uint8_t>& b, std::string* error) : b_(b), error_(error) {}

  bool U32(uint32_t* v) {
    if (pos_ + 4 > b_.size()) {
      return Fail("truncated u32");
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(b_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool Str(std::string* s, uint32_t max_len = 4096) {
    uint32_t n = 0;
    if (!U32(&n)) {
      return false;
    }
    if (n > max_len || pos_ + n > b_.size()) {
      return Fail("bad string length");
    }
    s->assign(reinterpret_cast<const char*>(b_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  bool Bytes(std::vector<uint8_t>* v, uint32_t n) {
    if (pos_ + n > b_.size()) {
      return Fail("truncated bytes");
    }
    v->assign(b_.begin() + static_cast<long>(pos_), b_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool Fail(const char* why) {
    *error_ = std::string(why) + " at offset " + std::to_string(pos_);
    return false;
  }
  bool AtEnd() const { return pos_ == b_.size(); }
  size_t pos() const { return pos_; }

 private:
  const std::vector<uint8_t>& b_;
  std::string* error_;
  size_t pos_ = 0;
};

void PutThreadState(std::vector<uint8_t>* out, const ThreadState& s) {
  uint32_t words[kThreadStateWords];
  ThreadStateToWords(s, words);
  for (uint32_t w : words) {
    PutU32(out, w);
  }
}

bool GetThreadState(Reader& r, ThreadState* s) {
  uint32_t words[kThreadStateWords];
  for (uint32_t& w : words) {
    if (!r.U32(&w)) {
      return false;
    }
  }
  ThreadStateFromWords(words, s);
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const CheckpointImage& img) {
  std::vector<uint8_t> out;
  PutU32(&out, kCkptMagic);
  PutU32(&out, kCkptVersion);
  PutStr(&out, img.space_name);
  PutStr(&out, img.program_name);
  PutU32(&out, img.anon_base);
  PutU32(&out, img.anon_size);

  PutU32(&out, static_cast<uint32_t>(img.threads.size()));
  for (const auto& t : img.threads) {
    PutThreadState(&out, t.state);
    PutStr(&out, t.program_name);
    PutU32(&out, t.was_runnable ? 1 : 0);
  }

  PutU32(&out, static_cast<uint32_t>(img.pages.size()));
  for (const auto& p : img.pages) {
    PutU32(&out, p.vaddr);
    PutU32(&out, p.prot);
    out.insert(out.end(), p.data.begin(), p.data.end());
  }

  PutU32(&out, static_cast<uint32_t>(img.objects.size()));
  for (const auto& o : img.objects) {
    PutU32(&out, static_cast<uint32_t>(o.kind));
    PutU32(&out, static_cast<uint32_t>(o.thread_index));
    PutU32(&out, o.mutex_locked ? 1 : 0);
    PutU32(&out, static_cast<uint32_t>(o.mutex_owner_thread));
  }
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

bool DeserializeCheckpoint(const std::vector<uint8_t>& bytes, CheckpointImage* out,
                           std::string* error) {
  *out = CheckpointImage{};
  Reader r(bytes, error);
  uint32_t magic = 0, version = 0;
  if (!r.U32(&magic) || !r.U32(&version)) {
    return false;
  }
  if (magic != kCkptMagic) {
    return r.Fail("bad magic");
  }
  if (version != kCkptVersion) {
    return r.Fail("unsupported version");
  }
  if (!r.Str(&out->space_name) || !r.Str(&out->program_name) || !r.U32(&out->anon_base) ||
      !r.U32(&out->anon_size)) {
    return false;
  }
  if ((out->anon_base & kPageMask) != 0 || (out->anon_size & kPageMask) != 0) {
    return r.Fail("unaligned anonymous range");
  }

  uint32_t n = 0;
  if (!r.U32(&n) || n > 100000) {
    return r.Fail("bad thread count");
  }
  out->threads.resize(n);
  for (auto& t : out->threads) {
    uint32_t runnable = 0;
    if (!GetThreadState(r, &t.state) || !r.Str(&t.program_name) || !r.U32(&runnable)) {
      return false;
    }
    t.was_runnable = runnable != 0;
  }

  if (!r.U32(&n) || n > (1u << 20)) {
    return r.Fail("bad page count");
  }
  out->pages.resize(n);
  for (size_t i = 0; i < out->pages.size(); ++i) {
    auto& p = out->pages[i];
    if (!r.U32(&p.vaddr) || !r.U32(&p.prot) || !r.Bytes(&p.data, kPageSize)) {
      return false;
    }
    if ((p.vaddr & kPageMask) != 0) {
      return r.Fail("unaligned page address");
    }
    // Strictly increasing: catches duplicates (which would double-provide a
    // page at restore) and keeps restored layouts deterministic.
    if (i > 0 && p.vaddr <= out->pages[i - 1].vaddr) {
      return r.Fail("pages out of order");
    }
  }

  if (!r.U32(&n) || n > 100000) {
    return r.Fail("bad object count");
  }
  out->objects.resize(n);
  for (auto& o : out->objects) {
    uint32_t kind = 0, tidx = 0, locked = 0, owner = 0;
    if (!r.U32(&kind) || !r.U32(&tidx) || !r.U32(&locked) || !r.U32(&owner)) {
      return false;
    }
    if (kind > static_cast<uint32_t>(CheckpointImage::ObjKind::kCond)) {
      return r.Fail("bad object kind");
    }
    o.kind = static_cast<CheckpointImage::ObjKind>(kind);
    o.thread_index = static_cast<int>(tidx);
    o.mutex_locked = locked != 0;
    o.mutex_owner_thread = static_cast<int>(owner);
  }

  // CRC trailer: everything before it must hash to it. Verified after the
  // structural parse (which is robust on its own) so magic/version/layout
  // errors report specifically, but before the image is handed to a caller.
  const size_t payload_end = r.pos();
  uint32_t crc_stored = 0;
  if (!r.U32(&crc_stored)) {
    return false;
  }
  if (!r.AtEnd()) {
    return r.Fail("trailing bytes");
  }
  if (Crc32(bytes.data(), payload_end) != crc_stored) {
    return r.Fail("checksum mismatch");
  }

  // Cross-checks the restorer relies on (RestoreSpace re-verifies and takes
  // an error return, but a well-formed stream never trips them).
  std::vector<bool> thread_claimed(out->threads.size(), false);
  for (size_t i = 0; i < out->objects.size(); ++i) {
    const auto& o = out->objects[i];
    switch (o.kind) {
      case CheckpointImage::ObjKind::kSpaceSelf:
        if (i != 0) {
          return r.Fail("space-self outside slot 1");
        }
        break;
      case CheckpointImage::ObjKind::kThreadSelf:
        if (o.thread_index < 0 ||
            static_cast<size_t>(o.thread_index) >= out->threads.size()) {
          return r.Fail("thread-self slot references a missing thread");
        }
        if (thread_claimed[static_cast<size_t>(o.thread_index)]) {
          return r.Fail("two slots claim one thread");
        }
        thread_claimed[static_cast<size_t>(o.thread_index)] = true;
        break;
      case CheckpointImage::ObjKind::kMutex:
        if (o.mutex_locked && o.mutex_owner_thread != -1 &&
            (o.mutex_owner_thread < 0 ||
             static_cast<size_t>(o.mutex_owner_thread) >= out->threads.size())) {
          return r.Fail("mutex owner out of range");
        }
        break;
      default:
        break;
    }
  }
  if (!out->objects.empty() &&
      out->objects[0].kind != CheckpointImage::ObjKind::kSpaceSelf) {
    return r.Fail("slot 1 is not the space-self slot");
  }
  if (!out->threads.empty() &&
      (out->objects.empty() ||
       std::find(thread_claimed.begin(), thread_claimed.end(), false) !=
           thread_claimed.end())) {
    return r.Fail("thread without a self slot");
  }
  return true;
}

// ---------------------------------------------------------------------------
// v3: machine-wide images with delta chaining (PR 8).
// ---------------------------------------------------------------------------

namespace {

// Page data travels in chunks of this many pages, each followed by a CRC32
// over the chunk's serialized bytes. The whole-stream trailer already
// rejects any corruption; the per-chunk CRCs localize it, so a loader (or a
// future partial-fetch transport) can name the damaged extent.
constexpr uint32_t kPagesPerChunk = 64;

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

bool GetU64(Reader& r, uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!r.U32(&lo) || !r.U32(&hi)) {
    return false;
  }
  *v = (static_cast<uint64_t>(hi) << 32) | lo;
  return true;
}

}  // namespace

uint64_t ImageDigest(const std::vector<uint8_t>& bytes) {
  uint64_t h = 14695981039346656037ull;
  for (uint8_t b : bytes) {
    h = (h ^ b) * 1099511628211ull;
  }
  return h;
}

std::vector<uint8_t> SerializeMachine(const MachineImage& img) {
  std::vector<uint8_t> out;
  PutU32(&out, kCkptMagic);
  PutU32(&out, kCkptVersion3);
  PutU32(&out, img.base_generation != 0 ? 1u : 0u);  // flags: bit0 = delta
  PutU32(&out, img.generation);
  PutU32(&out, img.base_generation);
  PutU64(&out, img.parent_digest);
  PutU64(&out, static_cast<uint64_t>(img.clock_ns));

  PutU32(&out, static_cast<uint32_t>(img.spaces.size()));
  for (const auto& s : img.spaces) {
    PutStr(&out, s.name);
    PutStr(&out, s.program_name);
    PutU32(&out, s.anon_base);
    PutU32(&out, s.anon_size);
    PutU32(&out, static_cast<uint32_t>(s.resident.size()));
    for (const auto& rp : s.resident) {
      PutU32(&out, rp.vaddr);
      PutU32(&out, rp.prot);
    }
    PutU32(&out, static_cast<uint32_t>(s.objects.size()));
    for (const auto& o : s.objects) {
      PutU32(&out, static_cast<uint32_t>(o.kind));
      PutU32(&out, static_cast<uint32_t>(o.index));
      PutU32(&out, o.mutex_locked ? 1 : 0);
      PutU32(&out, static_cast<uint32_t>(o.mutex_owner_thread));
    }
  }

  PutU32(&out, static_cast<uint32_t>(img.ports.size()));
  for (const auto& p : img.ports) {
    PutU32(&out, p.badge);
    PutU32(&out, static_cast<uint32_t>(p.kmsgs.size()));
    for (const auto& m : p.kmsgs) {
      for (uint32_t w : m.words) {
        PutU32(&out, w);
      }
      PutU32(&out, m.len);
      PutU32(&out, m.badge);
    }
  }
  PutU32(&out, static_cast<uint32_t>(img.portsets.size()));
  for (const auto& ps : img.portsets) {
    PutU32(&out, static_cast<uint32_t>(ps.member_ports.size()));
    for (uint32_t key : ps.member_ports) {
      PutU32(&out, key);
    }
  }

  PutU32(&out, static_cast<uint32_t>(img.threads.size()));
  for (const auto& t : img.threads) {
    PutU32(&out, t.space_index);
    PutThreadState(&out, t.state);
    PutStr(&out, t.program_name);
    PutU32(&out, t.was_runnable ? 1 : 0);
    PutU32(&out, static_cast<uint32_t>(t.ipc_peer));
    PutU32(&out, t.ipc_is_server ? 1 : 0);
    PutU32(&out, t.port_badge);
  }

  // Page sections last, chunked with per-chunk CRCs.
  for (const auto& s : img.spaces) {
    PutU32(&out, static_cast<uint32_t>(s.pages.size()));
    size_t chunk_start = out.size();
    uint32_t in_chunk = 0;
    for (size_t i = 0; i < s.pages.size(); ++i) {
      const auto& p = s.pages[i];
      PutU32(&out, p.vaddr);
      PutU32(&out, p.prot);
      out.insert(out.end(), p.data.begin(), p.data.end());
      if (++in_chunk == kPagesPerChunk || i + 1 == s.pages.size()) {
        PutU32(&out, Crc32(out.data() + chunk_start, out.size() - chunk_start));
        chunk_start = out.size();
        in_chunk = 0;
      }
    }
  }

  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

namespace {

// Wraps a legacy v2 single-space image as a one-space full machine image.
bool WrapV2AsMachine(const CheckpointImage& v2, MachineImage* out, std::string* error) {
  MachineImage m;
  MachineImage::SpaceImage sp;
  sp.name = v2.space_name;
  sp.program_name = v2.program_name;
  sp.anon_base = v2.anon_base;
  sp.anon_size = v2.anon_size;
  for (const auto& p : v2.pages) {
    sp.resident.push_back({p.vaddr, p.prot});
  }
  sp.pages = v2.pages;
  for (const auto& o : v2.objects) {
    MachineImage::ObjImage oi;
    switch (o.kind) {
      case CheckpointImage::ObjKind::kEmpty:
        oi.kind = MachineImage::ObjKind::kEmpty;
        break;
      case CheckpointImage::ObjKind::kSpaceSelf:
        oi.kind = MachineImage::ObjKind::kSpaceSelf;
        break;
      case CheckpointImage::ObjKind::kThreadSelf:
        oi.kind = MachineImage::ObjKind::kThreadSelf;
        oi.index = o.thread_index;
        break;
      case CheckpointImage::ObjKind::kMutex:
        oi.kind = MachineImage::ObjKind::kMutex;
        oi.mutex_locked = o.mutex_locked;
        oi.mutex_owner_thread = o.mutex_owner_thread;
        break;
      case CheckpointImage::ObjKind::kCond:
        oi.kind = MachineImage::ObjKind::kCond;
        break;
    }
    sp.objects.push_back(oi);
  }
  for (const auto& t : v2.threads) {
    MachineImage::ThreadImage ti;
    ti.space_index = 0;
    ti.state = t.state;
    ti.program_name = t.program_name;
    ti.was_runnable = t.was_runnable;
    m.threads.push_back(std::move(ti));
  }
  m.spaces.push_back(std::move(sp));
  *out = std::move(m);
  (void)error;
  return true;
}

}  // namespace

bool DeserializeImage(const std::vector<uint8_t>& bytes, MachineImage* out,
                      std::string* error) {
  *out = MachineImage{};
  {
    Reader peek(bytes, error);
    uint32_t magic = 0, version = 0;
    if (!peek.U32(&magic) || !peek.U32(&version)) {
      return false;
    }
    if (magic != kCkptMagic) {
      return peek.Fail("bad magic");
    }
    if (version == kCkptVersion) {
      CheckpointImage v2;
      if (!DeserializeCheckpoint(bytes, &v2, error)) {
        return false;
      }
      return WrapV2AsMachine(v2, out, error);
    }
    if (version != kCkptVersion3) {
      return peek.Fail("unsupported version");
    }
  }

  Reader r(bytes, error);
  uint32_t magic = 0, version = 0, flags = 0;
  if (!r.U32(&magic) || !r.U32(&version) || !r.U32(&flags)) {
    return false;
  }
  if (flags > 1) {
    return r.Fail("bad flags");
  }
  uint64_t clock = 0;
  if (!r.U32(&out->generation) || !r.U32(&out->base_generation) ||
      !GetU64(r, &out->parent_digest) || !GetU64(r, &clock)) {
    return false;
  }
  out->clock_ns = static_cast<Time>(clock);
  const bool delta = out->base_generation != 0;
  if (delta != (flags == 1)) {
    return r.Fail("delta flag disagrees with base generation");
  }
  if (out->generation == 0 || (delta && out->base_generation >= out->generation)) {
    return r.Fail("bad generation numbers");
  }

  uint32_t n = 0;
  if (!r.U32(&n) || n > 4096) {
    return r.Fail("bad space count");
  }
  out->spaces.resize(n);
  for (auto& s : out->spaces) {
    if (!r.Str(&s.name) || !r.Str(&s.program_name) || !r.U32(&s.anon_base) ||
        !r.U32(&s.anon_size)) {
      return false;
    }
    if ((s.anon_base & kPageMask) != 0 || (s.anon_size & kPageMask) != 0) {
      return r.Fail("unaligned anonymous range");
    }
    if (!r.U32(&n) || n > (1u << 20)) {
      return r.Fail("bad resident count");
    }
    s.resident.resize(n);
    for (size_t i = 0; i < s.resident.size(); ++i) {
      auto& rp = s.resident[i];
      if (!r.U32(&rp.vaddr) || !r.U32(&rp.prot)) {
        return false;
      }
      if ((rp.vaddr & kPageMask) != 0) {
        return r.Fail("unaligned resident page address");
      }
      if (i > 0 && rp.vaddr <= s.resident[i - 1].vaddr) {
        return r.Fail("resident directory out of order");
      }
    }
    if (!r.U32(&n) || n > 100000) {
      return r.Fail("bad object count");
    }
    s.objects.resize(n);
    for (auto& o : s.objects) {
      uint32_t kind = 0, index = 0, locked = 0, owner = 0;
      if (!r.U32(&kind) || !r.U32(&index) || !r.U32(&locked) || !r.U32(&owner)) {
        return false;
      }
      if (kind > static_cast<uint32_t>(MachineImage::ObjKind::kPortset)) {
        return r.Fail("bad object kind");
      }
      o.kind = static_cast<MachineImage::ObjKind>(kind);
      o.index = static_cast<int>(index);
      o.mutex_locked = locked != 0;
      o.mutex_owner_thread = static_cast<int>(owner);
    }
  }

  if (!r.U32(&n) || n > 100000) {
    return r.Fail("bad port count");
  }
  out->ports.resize(n);
  for (auto& p : out->ports) {
    if (!r.U32(&p.badge)) {
      return false;
    }
    if (!r.U32(&n) || n > 100000) {
      return r.Fail("bad kmsg count");
    }
    p.kmsgs.resize(n);
    for (auto& m : p.kmsgs) {
      for (uint32_t& w : m.words) {
        if (!r.U32(&w)) {
          return false;
        }
      }
      if (!r.U32(&m.len) || !r.U32(&m.badge)) {
        return false;
      }
      if (m.len > 8) {
        return r.Fail("bad kmsg length");
      }
    }
  }
  if (!r.U32(&n) || n > 4096) {
    return r.Fail("bad portset count");
  }
  out->portsets.resize(n);
  for (auto& ps : out->portsets) {
    if (!r.U32(&n) || n > 100000) {
      return r.Fail("bad portset member count");
    }
    ps.member_ports.resize(n);
    for (uint32_t& key : ps.member_ports) {
      if (!r.U32(&key)) {
        return false;
      }
      if (key >= out->ports.size()) {
        return r.Fail("portset member out of range");
      }
    }
  }

  if (!r.U32(&n) || n > 100000) {
    return r.Fail("bad thread count");
  }
  out->threads.resize(n);
  for (auto& t : out->threads) {
    uint32_t runnable = 0, peer = 0, server = 0;
    if (!r.U32(&t.space_index) || !GetThreadState(r, &t.state) ||
        !r.Str(&t.program_name) || !r.U32(&runnable) || !r.U32(&peer) ||
        !r.U32(&server) || !r.U32(&t.port_badge)) {
      return false;
    }
    if (t.space_index >= out->spaces.size()) {
      return r.Fail("thread space index out of range");
    }
    t.was_runnable = runnable != 0;
    t.ipc_peer = static_cast<int>(peer);
    if (t.ipc_peer != -1 &&
        (t.ipc_peer < 0 || static_cast<size_t>(t.ipc_peer) >= out->threads.size())) {
      return r.Fail("ipc peer out of range");
    }
    t.ipc_is_server = server != 0;
  }

  for (auto& s : out->spaces) {
    if (!r.U32(&n) || n > (1u << 20)) {
      return r.Fail("bad page count");
    }
    s.pages.resize(n);
    size_t chunk_start = r.pos();
    uint32_t in_chunk = 0;
    for (size_t i = 0; i < s.pages.size(); ++i) {
      auto& p = s.pages[i];
      if (!r.U32(&p.vaddr) || !r.U32(&p.prot) || !r.Bytes(&p.data, kPageSize)) {
        return false;
      }
      if ((p.vaddr & kPageMask) != 0) {
        return r.Fail("unaligned page address");
      }
      if (i > 0 && p.vaddr <= s.pages[i - 1].vaddr) {
        return r.Fail("pages out of order");
      }
      if (++in_chunk == kPagesPerChunk || i + 1 == s.pages.size()) {
        const size_t chunk_end = r.pos();
        uint32_t crc_stored = 0;
        if (!r.U32(&crc_stored)) {
          return false;
        }
        if (Crc32(bytes.data() + chunk_start, chunk_end - chunk_start) != crc_stored) {
          return r.Fail("page chunk checksum mismatch");
        }
        chunk_start = r.pos();
        in_chunk = 0;
      }
    }
  }

  const size_t payload_end = r.pos();
  uint32_t crc_stored = 0;
  if (!r.U32(&crc_stored)) {
    return false;
  }
  if (!r.AtEnd()) {
    return r.Fail("trailing bytes");
  }
  if (Crc32(bytes.data(), payload_end) != crc_stored) {
    return r.Fail("checksum mismatch");
  }

  // Cross-checks the restorer relies on. RestoreMachine re-verifies with an
  // error return, but a well-formed stream never trips them.
  std::vector<bool> thread_claimed(out->threads.size(), false);
  for (size_t si = 0; si < out->spaces.size(); ++si) {
    const auto& s = out->spaces[si];
    // Every data page must be in the resident directory (the delta-merge
    // correctness condition), checked by merging the two sorted walks.
    size_t ri = 0;
    for (const auto& p : s.pages) {
      while (ri < s.resident.size() && s.resident[ri].vaddr < p.vaddr) {
        ++ri;
      }
      if (ri == s.resident.size() || s.resident[ri].vaddr != p.vaddr) {
        return r.Fail("data page missing from the resident directory");
      }
    }
    for (size_t i = 0; i < s.objects.size(); ++i) {
      const auto& o = s.objects[i];
      switch (o.kind) {
        case MachineImage::ObjKind::kSpaceSelf:
          if (i != 0) {
            return r.Fail("space-self outside slot 1");
          }
          break;
        case MachineImage::ObjKind::kThreadSelf:
          if (o.index < 0 || static_cast<size_t>(o.index) >= out->threads.size()) {
            return r.Fail("thread-self slot references a missing thread");
          }
          if (out->threads[static_cast<size_t>(o.index)].space_index != si) {
            return r.Fail("thread-self slot in the wrong space");
          }
          if (thread_claimed[static_cast<size_t>(o.index)]) {
            return r.Fail("two slots claim one thread");
          }
          thread_claimed[static_cast<size_t>(o.index)] = true;
          break;
        case MachineImage::ObjKind::kThreadRef:
          if (o.index < 0 || static_cast<size_t>(o.index) >= out->threads.size()) {
            return r.Fail("thread reference to a missing thread");
          }
          break;
        case MachineImage::ObjKind::kMutex:
          if (o.mutex_locked && o.mutex_owner_thread != -1 &&
              (o.mutex_owner_thread < 0 ||
               static_cast<size_t>(o.mutex_owner_thread) >= out->threads.size())) {
            return r.Fail("mutex owner out of range");
          }
          break;
        case MachineImage::ObjKind::kPort:
        case MachineImage::ObjKind::kPortRef:
          if (o.index < 0 || static_cast<size_t>(o.index) >= out->ports.size()) {
            return r.Fail("port index out of range");
          }
          break;
        case MachineImage::ObjKind::kPortset:
          if (o.index < 0 || static_cast<size_t>(o.index) >= out->portsets.size()) {
            return r.Fail("portset index out of range");
          }
          break;
        default:
          break;
      }
    }
    if (!s.objects.empty() && s.objects[0].kind != MachineImage::ObjKind::kSpaceSelf) {
      return r.Fail("slot 1 is not the space-self slot");
    }
  }
  if (std::find(thread_claimed.begin(), thread_claimed.end(), false) !=
      thread_claimed.end()) {
    return r.Fail("thread without a self slot");
  }
  return true;
}

}  // namespace fluke
