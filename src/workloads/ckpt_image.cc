#include "src/workloads/ckpt_image.h"

#include <algorithm>
#include <cstring>

namespace fluke {

namespace {

// Reflected CRC-32 (IEEE 802.3 polynomial), table built on first use. Guards
// the whole stream: structural fields AND page contents, which the parser's
// bounds checks alone cannot vouch for.
uint32_t Crc32(const uint8_t* data, size_t len) {
  static uint32_t table[256];
  static bool ready = false;
  if (!ready) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    ready = true;
  }
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutStr(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

class Reader {
 public:
  Reader(const std::vector<uint8_t>& b, std::string* error) : b_(b), error_(error) {}

  bool U32(uint32_t* v) {
    if (pos_ + 4 > b_.size()) {
      return Fail("truncated u32");
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(b_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool Str(std::string* s, uint32_t max_len = 4096) {
    uint32_t n = 0;
    if (!U32(&n)) {
      return false;
    }
    if (n > max_len || pos_ + n > b_.size()) {
      return Fail("bad string length");
    }
    s->assign(reinterpret_cast<const char*>(b_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  bool Bytes(std::vector<uint8_t>* v, uint32_t n) {
    if (pos_ + n > b_.size()) {
      return Fail("truncated bytes");
    }
    v->assign(b_.begin() + static_cast<long>(pos_), b_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool Fail(const char* why) {
    *error_ = std::string(why) + " at offset " + std::to_string(pos_);
    return false;
  }
  bool AtEnd() const { return pos_ == b_.size(); }
  size_t pos() const { return pos_; }

 private:
  const std::vector<uint8_t>& b_;
  std::string* error_;
  size_t pos_ = 0;
};

void PutThreadState(std::vector<uint8_t>* out, const ThreadState& s) {
  uint32_t words[kThreadStateWords];
  ThreadStateToWords(s, words);
  for (uint32_t w : words) {
    PutU32(out, w);
  }
}

bool GetThreadState(Reader& r, ThreadState* s) {
  uint32_t words[kThreadStateWords];
  for (uint32_t& w : words) {
    if (!r.U32(&w)) {
      return false;
    }
  }
  ThreadStateFromWords(words, s);
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const CheckpointImage& img) {
  std::vector<uint8_t> out;
  PutU32(&out, kCkptMagic);
  PutU32(&out, kCkptVersion);
  PutStr(&out, img.space_name);
  PutStr(&out, img.program_name);
  PutU32(&out, img.anon_base);
  PutU32(&out, img.anon_size);

  PutU32(&out, static_cast<uint32_t>(img.threads.size()));
  for (const auto& t : img.threads) {
    PutThreadState(&out, t.state);
    PutStr(&out, t.program_name);
    PutU32(&out, t.was_runnable ? 1 : 0);
  }

  PutU32(&out, static_cast<uint32_t>(img.pages.size()));
  for (const auto& p : img.pages) {
    PutU32(&out, p.vaddr);
    PutU32(&out, p.prot);
    out.insert(out.end(), p.data.begin(), p.data.end());
  }

  PutU32(&out, static_cast<uint32_t>(img.objects.size()));
  for (const auto& o : img.objects) {
    PutU32(&out, static_cast<uint32_t>(o.kind));
    PutU32(&out, static_cast<uint32_t>(o.thread_index));
    PutU32(&out, o.mutex_locked ? 1 : 0);
    PutU32(&out, static_cast<uint32_t>(o.mutex_owner_thread));
  }
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

bool DeserializeCheckpoint(const std::vector<uint8_t>& bytes, CheckpointImage* out,
                           std::string* error) {
  *out = CheckpointImage{};
  Reader r(bytes, error);
  uint32_t magic = 0, version = 0;
  if (!r.U32(&magic) || !r.U32(&version)) {
    return false;
  }
  if (magic != kCkptMagic) {
    return r.Fail("bad magic");
  }
  if (version != kCkptVersion) {
    return r.Fail("unsupported version");
  }
  if (!r.Str(&out->space_name) || !r.Str(&out->program_name) || !r.U32(&out->anon_base) ||
      !r.U32(&out->anon_size)) {
    return false;
  }
  if ((out->anon_base & kPageMask) != 0 || (out->anon_size & kPageMask) != 0) {
    return r.Fail("unaligned anonymous range");
  }

  uint32_t n = 0;
  if (!r.U32(&n) || n > 100000) {
    return r.Fail("bad thread count");
  }
  out->threads.resize(n);
  for (auto& t : out->threads) {
    uint32_t runnable = 0;
    if (!GetThreadState(r, &t.state) || !r.Str(&t.program_name) || !r.U32(&runnable)) {
      return false;
    }
    t.was_runnable = runnable != 0;
  }

  if (!r.U32(&n) || n > (1u << 20)) {
    return r.Fail("bad page count");
  }
  out->pages.resize(n);
  for (size_t i = 0; i < out->pages.size(); ++i) {
    auto& p = out->pages[i];
    if (!r.U32(&p.vaddr) || !r.U32(&p.prot) || !r.Bytes(&p.data, kPageSize)) {
      return false;
    }
    if ((p.vaddr & kPageMask) != 0) {
      return r.Fail("unaligned page address");
    }
    // Strictly increasing: catches duplicates (which would double-provide a
    // page at restore) and keeps restored layouts deterministic.
    if (i > 0 && p.vaddr <= out->pages[i - 1].vaddr) {
      return r.Fail("pages out of order");
    }
  }

  if (!r.U32(&n) || n > 100000) {
    return r.Fail("bad object count");
  }
  out->objects.resize(n);
  for (auto& o : out->objects) {
    uint32_t kind = 0, tidx = 0, locked = 0, owner = 0;
    if (!r.U32(&kind) || !r.U32(&tidx) || !r.U32(&locked) || !r.U32(&owner)) {
      return false;
    }
    if (kind > static_cast<uint32_t>(CheckpointImage::ObjKind::kCond)) {
      return r.Fail("bad object kind");
    }
    o.kind = static_cast<CheckpointImage::ObjKind>(kind);
    o.thread_index = static_cast<int>(tidx);
    o.mutex_locked = locked != 0;
    o.mutex_owner_thread = static_cast<int>(owner);
  }

  // CRC trailer: everything before it must hash to it. Verified after the
  // structural parse (which is robust on its own) so magic/version/layout
  // errors report specifically, but before the image is handed to a caller.
  const size_t payload_end = r.pos();
  uint32_t crc_stored = 0;
  if (!r.U32(&crc_stored)) {
    return false;
  }
  if (!r.AtEnd()) {
    return r.Fail("trailing bytes");
  }
  if (Crc32(bytes.data(), payload_end) != crc_stored) {
    return r.Fail("checksum mismatch");
  }

  // Cross-checks the restorer relies on (RestoreSpace re-verifies and takes
  // an error return, but a well-formed stream never trips them).
  std::vector<bool> thread_claimed(out->threads.size(), false);
  for (size_t i = 0; i < out->objects.size(); ++i) {
    const auto& o = out->objects[i];
    switch (o.kind) {
      case CheckpointImage::ObjKind::kSpaceSelf:
        if (i != 0) {
          return r.Fail("space-self outside slot 1");
        }
        break;
      case CheckpointImage::ObjKind::kThreadSelf:
        if (o.thread_index < 0 ||
            static_cast<size_t>(o.thread_index) >= out->threads.size()) {
          return r.Fail("thread-self slot references a missing thread");
        }
        if (thread_claimed[static_cast<size_t>(o.thread_index)]) {
          return r.Fail("two slots claim one thread");
        }
        thread_claimed[static_cast<size_t>(o.thread_index)] = true;
        break;
      case CheckpointImage::ObjKind::kMutex:
        if (o.mutex_locked && o.mutex_owner_thread != -1 &&
            (o.mutex_owner_thread < 0 ||
             static_cast<size_t>(o.mutex_owner_thread) >= out->threads.size())) {
          return r.Fail("mutex owner out of range");
        }
        break;
      default:
        break;
    }
  }
  if (!out->objects.empty() &&
      out->objects[0].kind != CheckpointImage::ObjKind::kSpaceSelf) {
    return r.Fail("slot 1 is not the space-self slot");
  }
  if (!out->threads.empty() &&
      (out->objects.empty() ||
       std::find(thread_claimed.begin(), thread_claimed.end(), false) !=
           thread_claimed.end())) {
    return r.Fail("thread without a self slot");
  }
  return true;
}

}  // namespace fluke
