// The paper's three evaluation applications (section 5.3):
//
//  * memtest   -- touches 16 MiB one byte at a time under a demand-allocation
//                 memory manager (kernel fault handling + exception IPC);
//  * flukeperf -- a battery of synchronization and IPC microbenchmarks with
//                 many kernel calls and context switches, including the
//                 large long-running IPC operations that induce the Table 6
//                 preemption latencies;
//  * gcc       -- a compile-pipeline profile: dominated by user-mode compute
//                 with file-server IPC and thread create/join per unit.
//
// Each Run* builds a fresh kernel in the given configuration, runs the
// application to completion, and returns the elapsed virtual time plus the
// kernel's statistics. Used by bench/table5_apps, bench/table6_latency and
// the integration tests.

#ifndef SRC_WORKLOADS_APPS_H_
#define SRC_WORKLOADS_APPS_H_

#include <cstdint>

#include "src/kern/config.h"
#include "src/kern/stats.h"

namespace fluke {

struct AppResult {
  Time elapsed_ns = 0;
  KernelStats stats;
  bool completed = false;
};

struct MemtestParams {
  uint32_t bytes = 16 * 1024 * 1024;
};

struct FlukeperfParams {
  uint32_t null_syscalls = 400000;
  uint32_t mutex_pairs = 300000;
  uint32_t rpc_rounds = 400000;
  // Large long-running IPC operations (rare, as in the paper: they set the
  // NP configurations' maximum preemption latency).
  uint32_t bulk_1mb_sends = 40;
  uint32_t bulk_big_sends = 8;
  uint32_t big_send_bytes = 2560 * 1024;  // ~6.9 ms nonpreemptible in NP
  // region_search: many small ones plus a few over a large range (the PP
  // configurations' residual latency source, since the paper's only
  // explicit preemption point is on the IPC copy path).
  uint32_t small_searches = 600;
  uint32_t big_searches = 8;
  // When true, a high-priority probe thread wakes on every 1 ms timer tick
  // and its wake-to-run latencies are recorded (Table 6).
  bool latency_probe = false;
};

struct GccParams {
  uint32_t units = 20;                     // "files" compiled
  uint64_t compute_per_unit = 64000000;    // cycles of front+back end work
  uint32_t io_words_per_unit = 24 * 1024;  // file-server transfer (words)
  // The driver runs in a demand-paged space under a user-mode manager (a
  // real compile faults constantly: fork/exec, COW, heap growth).
  bool demand_paged = true;
};

AppResult RunMemtest(const KernelConfig& cfg, const MemtestParams& p = {});
AppResult RunFlukeperf(const KernelConfig& cfg, const FlukeperfParams& p = {});
AppResult RunGcc(const KernelConfig& cfg, const GccParams& p = {});

}  // namespace fluke

#endif  // SRC_WORKLOADS_APPS_H_
