// The paper's three evaluation applications (section 5.3):
//
//  * memtest   -- touches 16 MiB one byte at a time under a demand-allocation
//                 memory manager (kernel fault handling + exception IPC);
//  * flukeperf -- a battery of synchronization and IPC microbenchmarks with
//                 many kernel calls and context switches, including the
//                 large long-running IPC operations that induce the Table 6
//                 preemption latencies;
//  * gcc       -- a compile-pipeline profile: dominated by user-mode compute
//                 with file-server IPC and thread create/join per unit.
//
// Each Run* builds a fresh kernel in the given configuration, runs the
// application to completion, and returns the elapsed virtual time plus the
// kernel's statistics. Used by bench/table5_apps, bench/table6_latency and
// the integration tests.

#ifndef SRC_WORKLOADS_APPS_H_
#define SRC_WORKLOADS_APPS_H_

#include <cstdint>
#include <vector>

#include "src/kern/config.h"
#include "src/kern/stats.h"

namespace fluke {

class Kernel;
struct Thread;

struct AppResult {
  Time elapsed_ns = 0;
  KernelStats stats;
  bool completed = false;
};

struct MemtestParams {
  uint32_t bytes = 16 * 1024 * 1024;
};

struct FlukeperfParams {
  uint32_t null_syscalls = 400000;
  uint32_t mutex_pairs = 300000;
  uint32_t rpc_rounds = 400000;
  // Large long-running IPC operations (rare, as in the paper: they set the
  // NP configurations' maximum preemption latency).
  uint32_t bulk_1mb_sends = 40;
  uint32_t bulk_big_sends = 8;
  uint32_t big_send_bytes = 2560 * 1024;  // ~6.9 ms nonpreemptible in NP
  // region_search: many small ones plus a few over a large range (the PP
  // configurations' residual latency source, since the paper's only
  // explicit preemption point is on the IPC copy path).
  uint32_t small_searches = 600;
  uint32_t big_searches = 8;
  // When true, a high-priority probe thread wakes on every 1 ms timer tick
  // and its wake-to-run latencies are recorded (Table 6).
  bool latency_probe = false;
};

struct GccParams {
  uint32_t units = 20;                     // "files" compiled
  uint64_t compute_per_unit = 64000000;    // cycles of front+back end work
  uint32_t io_words_per_unit = 24 * 1024;  // file-server transfer (words)
  // The driver runs in a demand-paged space under a user-mode manager (a
  // real compile faults constantly: fork/exec, COW, heap growth).
  bool demand_paged = true;
};

AppResult RunMemtest(const KernelConfig& cfg, const MemtestParams& p = {});
AppResult RunFlukeperf(const KernelConfig& cfg, const FlukeperfParams& p = {});
AppResult RunGcc(const KernelConfig& cfg, const GccParams& p = {});

// --- The c1m thread-scaling workload (not from the paper) ---
//
// N client threads hammer a pool of servers behind a portset: every client
// does `rounds` of connect -> one-word RPC -> disconnect -> clock_sleep
// (staggered per-thread durations, so the timing wheel sees both a connect
// storm and a timeout storm), then parks in a long sleep. A master thread
// sweeps thread_interrupt over every client (the wakeup storm: parked
// sleeps cancel their timers and finish early). The server pool services
// whatever arrives and runs forever, like a daemon; the run is over when
// the clients and the master are dead.
//
// The point is footprint and wake throughput at large N, per execution
// model: in the process model every blocked client retains its kernel
// stack, in the interrupt model blocked clients cost only their restart
// registers. bytes_per_thread reports exactly that.

struct C1mParams {
  uint32_t clients = 1000;
  uint32_t rounds = 2;           // RPC+sleep rounds per client
  uint32_t park_us = 50000;      // final parked sleep (cut short by the sweep)
  // Master sleeps this long, then sweeps thread_interrupt over every
  // client. 0 (the default) auto-scales with the client count: virtual
  // time is serialized, so the first client reaches its park only after
  // ~everyone's first RPC round, and a fixed delay either lands before any
  // sleeper exists (large N) or after all of them woke (small N).
  uint32_t sweep_delay_us = 0;
};

struct C1mResult {
  AppResult app;
  uint32_t clients = 0;
  // Peak kernel bytes held by blocked threads, divided by N: the per-thread
  // kernel memory cost of the execution model.
  double bytes_per_thread = 0.0;
  // Thread wakeups (context switches) per virtual second: wake throughput.
  double wakeups_per_vsec = 0.0;
};

// Builds the workload into an existing kernel and returns the threads whose
// completion ends the run (the clients, then the master). Used by fluke_run
// --workload=c1m and by RunC1m below.
std::vector<Thread*> BuildC1mWorkload(Kernel& k, const C1mParams& p);

C1mResult RunC1m(const KernelConfig& cfg, const C1mParams& p = {});

}  // namespace fluke

#endif  // SRC_WORKLOADS_APPS_H_
