// The atomicity audit: the chaos kernel's oracle for the paper's central
// claim (section 3) that every kernel operation is interruptible and every
// thread's state extractable promptly and correctly at ANY instant.
//
// The audit runs a deterministic single-threaded workload once untouched
// (the golden run), in single-step mode so every retired instruction is its
// own dispatch boundary. It then re-runs the workload once per boundary,
// forcing an extract-destroy-recreate of the thread at exactly that
// boundary (FaultPlan::extract_at), and requires the final user-visible
// machine state -- registers, exit code, every mapped page's contents,
// virtual time, and the semantic stats counters -- to be bit-identical to
// the golden run. Any divergence means some kernel state was NOT captured
// by the registers at that boundary, i.e. the operation straddling it was
// not atomic.

#ifndef SRC_WORKLOADS_AUDIT_H_
#define SRC_WORKLOADS_AUDIT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/kern/kernel.h"

namespace fluke {

// Everything the golden run can observe about a finished workload. The
// extraction-swept runs must match it exactly. Engine-observability
// counters (tlb_*, interp_*) are deliberately excluded -- they are allowed
// to differ across engines and across shared predecode caches -- but
// user_instructions is included: it is semantic.
struct AuditSnapshot {
  UserRegisters regs{};
  uint32_t exit_code = 0;
  Time final_time = 0;
  uint64_t user_instructions = 0;
  uint64_t context_switches = 0;
  uint64_t syscalls = 0;
  uint64_t syscall_restarts = 0;
  uint64_t kernel_preemptions = 0;
  uint64_t soft_faults = 0;
  uint64_t hard_faults = 0;
  uint64_t user_faults = 0;
  // (vaddr, page contents) for every mapped page, sorted by vaddr.
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> pages;

  bool operator==(const AuditSnapshot&) const = default;
};

// Flight-recorder capture of a diverging run: the last `flight_events`
// trace events plus the full stats snapshot, carried out of the sweep so
// the caller can write a postmortem bundle. Captured only when the audit
// was invoked with flight_events != 0 and a sweep run failed -- tracing
// inside the sweep is host-side (the injector is armed, so the swept
// kernels already run the instrumented slow path) and cannot perturb the
// audited virtual-time behavior.
struct AuditFlight {
  bool captured = false;
  std::vector<TraceEvent> events;
  Time end_ns = 0;
  uint64_t total = 0;
  uint64_t dropped = 0;
  std::vector<std::pair<uint64_t, std::string>> thread_names;
  std::string stats_json;
};

struct AuditResult {
  bool ok = false;
  uint64_t boundaries = 0;       // dispatch boundaries in the golden run
  uint64_t audited = 0;          // extraction points actually swept
  uint64_t failed_boundary = 0;  // first diverging boundary (when !ok)
  std::string error;             // human-readable failure description
  std::string divergent_dump;    // DumpKernel of the diverging run
  AuditFlight flight;            // postmortem capture of the diverging run
};

// Builds the audit workload: a deterministic single-threaded program of
// >= 200 instructions mixing ALU work, loads/stores across several anon
// pages, object-create/mutex/clock syscalls and a short sleep, halting with
// a checksum of everything it computed. `anon_base` is where its data
// lives.
ProgramRef BuildAuditProgram(uint32_t anon_base);

// Runs the full sweep described above for one kernel configuration.
// `max_time` bounds each individual run in virtual time. `flight_events`
// != 0 arms a flight-recorder ring of that many events inside every swept
// kernel; on divergence the diverging run's capture lands in
// AuditResult::flight.
AuditResult RunAtomicityAudit(const KernelConfig& base_cfg, const ProgramRef& prog,
                              uint32_t anon_base, uint32_t anon_size,
                              Time max_time = 60ull * 1000 * 1000 * 1000,
                              size_t flight_events = 0);

}  // namespace fluke

#endif  // SRC_WORKLOADS_AUDIT_H_
