#include "src/workloads/audit.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/api/ulib.h"
#include "src/kern/inspect.h"
#include "src/kern/trace_binary.h"

namespace fluke {

namespace {

// One complete run of the workload under `plan`, snapshotting everything
// the oracle compares. Returns false (with *why filled) if the run did not
// quiesce or left no finished thread.
bool RunOnce(const KernelConfig& base_cfg, const FaultPlan& plan, const ProgramRef& prog,
             uint32_t anon_base, uint32_t anon_size, Time max_time, ProgramRegistry* registry,
             size_t flight_events, AuditFlight* flight, AuditSnapshot* out, uint64_t* boundaries,
             uint64_t* extractions, uint64_t* restart_audits, std::string* dump,
             std::string* why) {
  KernelConfig cfg = base_cfg;
  cfg.fault_plan = plan;
  Kernel k(cfg, registry);
  if (flight_events != 0) {
    // Flight ring for the postmortem bundle. The armed injector already
    // forces the instrumented slow path, so turning the tracer on changes
    // nothing the oracle compares (tracing is host-side).
    k.trace.SetCapacity(flight_events);
    k.trace.Enable();
  }
  auto space = k.CreateSpace("audit");
  space->SetAnonRange(anon_base, anon_size);
  space->program = prog;
  Thread* t = k.CreateThread(space.get(), prog);
  k.StartThread(t);
  k.finj.Arm();

  const bool quiesced = k.RunUntilQuiescent(max_time);
  if (flight != nullptr && flight_events != 0) {
    flight->captured = true;
    flight->events = k.trace.Snapshot();
    flight->end_ns = k.clock.now();
    flight->total = k.trace.total_recorded();
    flight->dropped = k.trace.dropped();
    flight->thread_names = TraceThreadNames(k);
    ++k.stats.flight_dumps;  // the bundle's stats self-report the capture
    flight->stats_json = StatsJson(k);
  }
  if (boundaries != nullptr) {
    *boundaries = k.finj.dispatch_boundaries();
  }
  if (extractions != nullptr) {
    *extractions = k.stats.extractions_forced;
  }
  if (restart_audits != nullptr) {
    *restart_audits = k.stats.restart_audits;
  }
  if (dump != nullptr) {
    *dump = DumpKernel(k);
  }
  if (!quiesced) {
    *why = "run did not quiesce within max_time";
    return false;
  }
  // The lineage-final thread: the original, or -- after a forced
  // extraction -- the successor created in its place (threads_ is
  // append-only; dead predecessors remain listed).
  if (k.threads().empty()) {
    *why = "no threads after run";
    return false;
  }
  const Thread* last = k.threads().back().get();
  if (last->run_state != ThreadRun::kDead) {
    *why = "final thread did not exit";
    return false;
  }

  AuditSnapshot s;
  s.regs = last->regs;
  s.exit_code = last->exit_code;
  s.final_time = k.clock.now();
  s.user_instructions = k.stats.user_instructions;
  s.context_switches = k.stats.context_switches;
  s.syscalls = k.stats.syscalls;
  s.syscall_restarts = k.stats.syscall_restarts;
  s.kernel_preemptions = k.stats.kernel_preemptions;
  s.soft_faults = k.stats.soft_faults;
  s.hard_faults = k.stats.hard_faults;
  s.user_faults = k.stats.user_faults;
  for (const auto& [page, pte] : space->page_table()) {
    (void)pte;
    std::vector<uint8_t> data(kPageSize);
    const uint32_t vaddr = page << kPageShift;
    const Span sp = space->TranslateSpan(vaddr, kPageSize, kProtNone);
    if (sp.len != kPageSize) {
      *why = "page translation failed during snapshot";
      return false;
    }
    std::memcpy(data.data(), sp.ptr, kPageSize);
    s.pages.emplace_back(vaddr, std::move(data));
  }
  std::sort(s.pages.begin(), s.pages.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  *out = std::move(s);
  return true;
}

// Names the first snapshot component that differs, for the failure report.
std::string DescribeDivergence(const AuditSnapshot& want, const AuditSnapshot& got) {
  char buf[160];
  if (!(want.regs == got.regs)) {
    std::snprintf(buf, sizeof(buf), "registers differ (pc %u vs %u, A %u vs %u, B %u vs %u)",
                  want.regs.pc, got.regs.pc, want.regs.gpr[kRegA], got.regs.gpr[kRegA],
                  want.regs.gpr[kRegB], got.regs.gpr[kRegB]);
    return buf;
  }
  if (want.exit_code != got.exit_code) {
    std::snprintf(buf, sizeof(buf), "exit code %u vs %u", want.exit_code, got.exit_code);
    return buf;
  }
  if (want.final_time != got.final_time) {
    std::snprintf(buf, sizeof(buf), "final virtual time %llu vs %llu",
                  static_cast<unsigned long long>(want.final_time),
                  static_cast<unsigned long long>(got.final_time));
    return buf;
  }
  if (want.user_instructions != got.user_instructions) {
    std::snprintf(buf, sizeof(buf), "user_instructions %llu vs %llu",
                  static_cast<unsigned long long>(want.user_instructions),
                  static_cast<unsigned long long>(got.user_instructions));
    return buf;
  }
  if (want.pages.size() != got.pages.size()) {
    std::snprintf(buf, sizeof(buf), "mapped page count %zu vs %zu", want.pages.size(),
                  got.pages.size());
    return buf;
  }
  for (size_t i = 0; i < want.pages.size(); ++i) {
    if (want.pages[i].first != got.pages[i].first) {
      std::snprintf(buf, sizeof(buf), "page %zu vaddr 0x%x vs 0x%x", i, want.pages[i].first,
                    got.pages[i].first);
      return buf;
    }
    if (want.pages[i].second != got.pages[i].second) {
      std::snprintf(buf, sizeof(buf), "page 0x%x contents differ", want.pages[i].first);
      return buf;
    }
  }
  return "stats counters differ";
}

}  // namespace

ProgramRef BuildAuditProgram(uint32_t anon_base) {
  Assembler a("audit");
  const int A = kRegA, B = kRegB, C = kRegC, SI = kRegSI, DI = kRegDI, BP = kRegBP, SP = kRegSP;
  (void)A;

  // Phase 1: a 24-iteration mixing loop (~220 retired instructions) so the
  // sweep has a dense run of pure-compute dispatch boundaries. SP is the
  // running checksum the whole program folds into.
  a.MovImm(SP, 0x9E3779B9u);
  a.MovImm(BP, 0);
  a.MovImm(DI, 24);
  const auto loop = a.NewLabel();
  const auto loop_done = a.NewLabel();
  a.Bind(loop);
  a.Bge(BP, DI, loop_done);
  a.MovImm(C, 2654435761u);
  a.Mul(SI, BP, C);
  a.Xor(SP, SP, SI);
  a.MovImm(C, 13);
  a.Shl(SI, SP, C);
  a.Add(SP, SP, SI);
  a.AddImm(BP, BP, 1);
  a.Jmp(loop);
  a.Bind(loop_done);

  // Phase 2: stores and loads across three anonymous pages -- each first
  // touch is a zero-fill user fault, so boundaries fall inside the
  // fault-resolution path too.
  a.MovImm(B, anon_base);
  a.StoreW(SP, B, 0);
  a.AddImm(SP, SP, 7);
  a.StoreW(SP, B, kPageSize);
  a.AddImm(SP, SP, 7);
  a.StoreW(SP, B, 2 * kPageSize + 4);
  a.LoadW(C, B, 0);
  a.Add(SP, SP, C);
  a.LoadW(C, B, kPageSize);
  a.Xor(SP, SP, C);
  a.StoreB(SP, B, 2 * kPageSize + 0xF00);
  a.LoadB(C, B, 2 * kPageSize + 0xF00);
  a.Add(SP, SP, C);

  // Phase 3: syscalls. A trivial call, a virtual-time read folded into the
  // checksum (times must match exactly for it to survive the oracle), a
  // mutex create/trylock/unlock chain whose handle and result codes feed
  // the checksum, and a short sleep so one boundary set lands on a thread
  // carrying a blocked-op restart.
  EmitSys(a, kSysNull);
  EmitSys(a, kSysClockGet);
  a.Add(SP, SP, B);  // B = current virtual time in microseconds
  EmitSys(a, kSysMutexCreate);
  a.Add(SP, SP, B);             // B = mutex handle (slot allocation is deterministic)
  EmitSys(a, kSysMutexTrylock);  // B still holds the handle
  a.Add(SP, SP, A);              // result code (kFlukeOk)
  EmitSys(a, kSysMutexUnlock);
  a.Add(SP, SP, A);
  EmitSys(a, kSysClockSleep, 50);  // 50us; wakes via the event queue
  EmitSys(a, kSysClockGet);
  a.Add(SP, SP, B);

  // Phase 4: a second short store burst after the sleep, then exit with the
  // checksum (Halt's exit code is register B).
  a.MovImm(B, anon_base);
  a.StoreW(SP, B, 8);
  a.LoadW(C, B, 8);
  a.Add(SP, SP, C);
  a.Mov(B, SP);
  a.Halt();
  return a.Build();
}

AuditResult RunAtomicityAudit(const KernelConfig& base_cfg, const ProgramRef& prog,
                              uint32_t anon_base, uint32_t anon_size, Time max_time,
                              size_t flight_events) {
  AuditResult result;
  ProgramRegistry registry;
  registry.Register(prog);

  FaultPlan golden_plan;
  golden_plan.enabled = true;
  golden_plan.single_step = true;
  AuditSnapshot golden;
  std::string why;
  if (!RunOnce(base_cfg, golden_plan, prog, anon_base, anon_size, max_time, &registry, 0, nullptr,
               &golden, &result.boundaries, nullptr, nullptr, nullptr, &why)) {
    result.error = "golden run failed: " + why;
    return result;
  }
  if (result.boundaries == 0) {
    result.error = "golden run saw no dispatch boundaries";
    return result;
  }

  for (uint64_t b = 0; b < result.boundaries; ++b) {
    FaultPlan plan = golden_plan;
    plan.extract_at = b;
    AuditSnapshot got;
    uint64_t extractions = 0;
    uint64_t audits = 0;
    std::string dump;
    AuditFlight flight;
    char buf[128];
    if (!RunOnce(base_cfg, plan, prog, anon_base, anon_size, max_time, &registry, flight_events,
                 &flight, &got, nullptr, &extractions, &audits, &dump, &why)) {
      std::snprintf(buf, sizeof(buf), "extraction at boundary %llu: ",
                    static_cast<unsigned long long>(b));
      result.failed_boundary = b;
      result.error = buf + why;
      result.divergent_dump = std::move(dump);
      result.flight = std::move(flight);
      return result;
    }
    if (extractions != 1 || audits != 1) {
      std::snprintf(buf, sizeof(buf),
                    "boundary %llu: expected 1 extraction + 1 completed audit, got %llu/%llu",
                    static_cast<unsigned long long>(b),
                    static_cast<unsigned long long>(extractions),
                    static_cast<unsigned long long>(audits));
      result.failed_boundary = b;
      result.error = buf;
      result.divergent_dump = std::move(dump);
      result.flight = std::move(flight);
      return result;
    }
    if (!(got == golden)) {
      std::snprintf(buf, sizeof(buf), "boundary %llu diverged: ",
                    static_cast<unsigned long long>(b));
      result.failed_boundary = b;
      result.error = buf + DescribeDivergence(golden, got);
      result.divergent_dump = std::move(dump);
      result.flight = std::move(flight);
      return result;
    }
    ++result.audited;
  }
  result.ok = true;
  return result;
}

}  // namespace fluke
