// Checkpoint image serialization.
//
// Turns a CheckpointImage into a self-describing byte stream and back, so a
// migration manager can ship a frozen task over a wire or park it on disk.
// The format is versioned and validated on load; pages are stored sparsely
// (only mapped pages travel).
//
// Version 2 appends a CRC32 trailer over the whole payload and the loader
// cross-validates the structures the restorer relies on (slot 1 is the
// space-self slot, mutex owners and thread-self indices are in range and
// unique, page addresses are strictly increasing). Any single corrupted
// byte anywhere in the stream is rejected; never crashes on hostile input.

#ifndef SRC_WORKLOADS_CKPT_IMAGE_H_
#define SRC_WORKLOADS_CKPT_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workloads/checkpoint.h"

namespace fluke {

inline constexpr uint32_t kCkptMagic = 0x464C4B31;  // "FLK1"
inline constexpr uint32_t kCkptVersion = 2;  // v2: CRC32 trailer + semantic checks

// Serializes `img` to bytes.
std::vector<uint8_t> SerializeCheckpoint(const CheckpointImage& img);

// Parses bytes back into an image. Returns false (with *error set) on a
// malformed, truncated or version-mismatched stream; never crashes on
// hostile input.
bool DeserializeCheckpoint(const std::vector<uint8_t>& bytes, CheckpointImage* out,
                           std::string* error);

}  // namespace fluke

#endif  // SRC_WORKLOADS_CKPT_IMAGE_H_
