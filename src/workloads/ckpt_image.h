// Checkpoint image serialization.
//
// Turns a CheckpointImage into a self-describing byte stream and back, so a
// migration manager can ship a frozen task over a wire or park it on disk.
// The format is versioned and validated on load; pages are stored sparsely
// (only mapped pages travel).
//
// Version 2 appends a CRC32 trailer over the whole payload and the loader
// cross-validates the structures the restorer relies on (slot 1 is the
// space-self slot, mutex owners and thread-self indices are in range and
// unique, page addresses are strictly increasing). Any single corrupted
// byte anywhere in the stream is rejected; never crashes on hostile input.

#ifndef SRC_WORKLOADS_CKPT_IMAGE_H_
#define SRC_WORKLOADS_CKPT_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workloads/checkpoint.h"

namespace fluke {

inline constexpr uint32_t kCkptMagic = 0x464C4B31;  // "FLK1"
inline constexpr uint32_t kCkptVersion = 2;  // v2: CRC32 trailer + semantic checks
// v3: machine-wide images (every space + cross-space IPC objects), delta
// chaining (generation / base_generation / parent digest), resident page
// directories, and per-chunk page CRCs on top of the v2 stream trailer.
inline constexpr uint32_t kCkptVersion3 = 3;

// Serializes `img` to bytes.
std::vector<uint8_t> SerializeCheckpoint(const CheckpointImage& img);

// Parses bytes back into an image. Returns false (with *error set) on a
// malformed, truncated or version-mismatched stream; never crashes on
// hostile input.
bool DeserializeCheckpoint(const std::vector<uint8_t>& bytes, CheckpointImage* out,
                           std::string* error);

// Serializes a machine-wide image (v3 stream).
std::vector<uint8_t> SerializeMachine(const MachineImage& img);

// Parses a v3 machine image -- or, for backward compatibility, a v2
// single-space image, which is wrapped as a one-space full MachineImage --
// with the same hostile-input guarantees as DeserializeCheckpoint.
bool DeserializeImage(const std::vector<uint8_t>& bytes, MachineImage* out,
                      std::string* error);

// FNV-1a over the serialized stream: the identity a delta image's
// parent_digest names, and what the restart log records per generation.
uint64_t ImageDigest(const std::vector<uint8_t>& bytes);

}  // namespace fluke

#endif  // SRC_WORKLOADS_CKPT_IMAGE_H_
