#include "src/workloads/apps.h"

#include <cassert>
#include <vector>

#include "src/api/ulib.h"
#include "src/kern/kernel.h"
#include "src/workloads/pager.h"

namespace fluke {

namespace {

// Emits a counted loop whose counter lives in memory (the syscall stubs
// clobber every argument register, so loop state cannot live in registers).
// `body` emits the loop body; it may clobber anything.
template <typename Body>
void EmitCountedLoop(Assembler& a, uint32_t counter_addr, uint32_t count, Body&& body) {
  a.MovImm(kRegB, 0);
  a.MovImm(kRegC, counter_addr);
  a.StoreW(kRegB, kRegC, 0);
  const auto loop = a.NewLabel();
  const auto done = a.NewLabel();
  a.Bind(loop);
  a.MovImm(kRegC, counter_addr);
  a.LoadW(kRegB, kRegC, 0);
  a.MovImm(kRegSP, count);
  a.Bge(kRegB, kRegSP, done);
  body();
  a.MovImm(kRegC, counter_addr);
  a.LoadW(kRegB, kRegC, 0);
  a.AddImm(kRegB, kRegB, 1);
  a.StoreW(kRegB, kRegC, 0);
  a.Jmp(loop);
  a.Bind(done);
}

// Pre-provides (zero-filled) pages for [base, base+len) in `space` so a
// phase measures steady-state costs, not warm-up faults.
void Prefault(Space* space, uint32_t base, uint32_t len) {
  for (uint32_t a = base & ~kPageMask; a < base + len; a += kPageSize) {
    if (!space->PagePresent(a)) {
      FrameId f = space->ProvidePage(a);
      assert(f != kInvalidFrame);
      (void)f;
    }
  }
}

AppResult Collect(Kernel& k, bool completed) {
  AppResult r;
  r.elapsed_ns = k.clock.now();
  r.stats = k.stats;
  r.completed = completed;
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// memtest
// ---------------------------------------------------------------------------

AppResult RunMemtest(const KernelConfig& cfg, const MemtestParams& p) {
  Kernel k(cfg);
  ManagedSetup m = BuildManagedSpace(k, p.bytes + kPageSize, "memtest");
  k.StartThread(m.manager_thread);

  Assembler a("memtest");
  // The classic byte walk: one load per byte, sequential.
  EmitTouchRange(a, 0, p.bytes, /*write=*/false);
  a.Halt();
  m.child_space->program = a.Build();
  Thread* child = k.CreateThread(m.child_space.get());
  k.StartThread(child);

  const bool done = k.RunUntilThreadDone(child, 600ull * 1000 * kNsPerMs);
  return Collect(k, done);
}

// ---------------------------------------------------------------------------
// flukeperf
// ---------------------------------------------------------------------------

AppResult RunFlukeperf(const KernelConfig& cfg, const FlukeperfParams& p) {
  Kernel k(cfg);

  auto client_space = k.CreateSpace("perf-client");
  auto server_space = k.CreateSpace("perf-server");
  constexpr uint32_t kAnon = 0x10000;
  constexpr uint32_t kAnonSize = 12 * 1024 * 1024;
  client_space->SetAnonRange(kAnon, kAnonSize);
  server_space->SetAnonRange(kAnon, kAnonSize);

  auto port = k.NewPort(1);
  const Handle sport = k.Install(server_space.get(), port);
  const Handle cref = k.Install(client_space.get(), k.NewReference(port));
  const Handle cmutex = k.Install(client_space.get(), k.NewMutex());

  // Memory layout (both spaces): scratch counters page, then bulk buffer.
  constexpr uint32_t kCounters = kAnon;              // loop counters
  constexpr uint32_t kSmallBuf = kAnon + 0x100;      // 1-word RPC payloads
  constexpr uint32_t kBulkBuf = kAnon + kPageSize;   // up to 6 MiB
  constexpr uint32_t kWords1M = (1024 * 1024) / 4;
  const uint32_t big_words = p.big_send_bytes / 4;
  Prefault(client_space.get(), kCounters, kPageSize + p.big_send_bytes);
  Prefault(server_space.get(), kCounters, kPageSize + p.big_send_bytes);

  // --- Client program: the five phases ---
  Assembler ca("flukeperf");
  // Phase A: null syscalls.
  EmitCountedLoop(ca, kCounters + 0, p.null_syscalls, [&] { EmitSys(ca, kSysNull); });
  // Phase B: uncontended mutex lock/unlock pairs.
  EmitCountedLoop(ca, kCounters + 4, p.mutex_pairs, [&] {
    EmitSys(ca, kSysMutexLock, cmutex);
    EmitSys(ca, kSysMutexUnlock, cmutex);
  });
  // Phase C: null RPC round trips (1 word each way).
  EmitSys(ca, kSysIpcClientConnect, cref);
  EmitCheckOk(ca);
  EmitCountedLoop(ca, kCounters + 8, p.rpc_rounds, [&] {
    EmitSys(ca, kSysIpcClientSendOverReceive, kUlibKeep, kSmallBuf, 1, kSmallBuf + 16, 1);
    EmitCheckOk(ca);
  });
  // Phase D: bulk sends (the "large, long running IPC operations ideal for
  // inducing preemption latencies").
  EmitCountedLoop(ca, kCounters + 12, p.bulk_1mb_sends, [&] {
    EmitSys(ca, kSysIpcClientSend, kUlibKeep, kBulkBuf, kWords1M, 0, 0);
    EmitCheckOk(ca);
  });
  EmitCountedLoop(ca, kCounters + 16, p.bulk_big_sends, [&] {
    EmitSys(ca, kSysIpcClientSend, kUlibKeep, kBulkBuf, big_words, 0, 0);
    EmitCheckOk(ca);
  });
  // Phase E: region_search -- many small scans plus a few over a large
  // empty range (multi-stage, but with no explicit preemption point: the
  // PP configurations' residual latency source).
  EmitCountedLoop(ca, kCounters + 20, p.small_searches, [&] {
    EmitSys(ca, kSysRegionSearch, 0x40000000, 256 * 1024);
  });
  EmitCountedLoop(ca, kCounters + 24, p.big_searches, [&] {
    EmitSys(ca, kSysRegionSearch, 0x40000000, 6 * 1024 * 1024 + 512 * 1024);
  });
  EmitSys(ca, kSysIpcClientDisconnect);
  ca.Halt();

  // --- Server program ---
  Assembler sa("perf-server");
  // First request of the RPC phase arrives with the connection.
  EmitSys(sa, kSysIpcWaitReceive, sport, 0, 0, kSmallBuf, 1);
  EmitCheckOk(sa);
  // RPC replies: all rounds except the last are reply+receive.
  if (p.rpc_rounds > 1) {
    EmitCountedLoop(sa, kCounters + 0, p.rpc_rounds - 1, [&] {
      EmitSys(sa, kSysIpcServerAckSendOverReceive, 0, kSmallBuf + 16, 1, kSmallBuf, 1);
      EmitCheckOk(sa);
    });
  }
  EmitSys(sa, kSysIpcServerAckSend, 0, kSmallBuf + 16, 1, 0, 0);
  EmitCheckOk(sa);
  // Bulk receives.
  EmitCountedLoop(sa, kCounters + 4, p.bulk_1mb_sends, [&] {
    EmitSys(sa, kSysIpcServerReceive, 0, 0, 0, kBulkBuf, kWords1M);
    EmitCheckOk(sa);
  });
  EmitCountedLoop(sa, kCounters + 8, p.bulk_big_sends, [&] {
    EmitSys(sa, kSysIpcServerReceive, 0, 0, 0, kBulkBuf, big_words);
    EmitCheckOk(sa);
  });
  sa.Halt();

  client_space->program = ca.Build();
  server_space->program = sa.Build();
  Thread* client = k.CreateThread(client_space.get(), nullptr, /*priority=*/4);
  Thread* server = k.CreateThread(server_space.get(), nullptr, /*priority=*/4);
  k.StartThread(server);
  k.StartThread(client);

  // Table 6 probe: a high-priority thread released by every 1 ms timer tick.
  if (p.latency_probe) {
    auto probe_space = k.CreateSpace("probe");
    probe_space->SetAnonRange(kAnon, kPageSize);
    Assembler pa("probe");
    const auto loop = pa.NewLabel();
    pa.Bind(loop);
    EmitSys(pa, kSysIrqWait, kIrqTimer);
    pa.Compute(400);  // 2 us of "handler" work per activation
    pa.Jmp(loop);
    probe_space->program = pa.Build();
    Thread* probe = k.CreateThread(probe_space.get(), nullptr, /*priority=*/7);
    k.SetLatencyProbe(probe, true);
    k.StartThread(probe);
  }

  const bool done = k.RunUntilThreadDone(client, 600ull * 1000 * kNsPerMs) &&
                    k.RunUntilThreadDone(server, 10ull * 1000 * kNsPerMs);
  return Collect(k, done);
}

// ---------------------------------------------------------------------------
// gcc
// ---------------------------------------------------------------------------

AppResult RunGcc(const KernelConfig& cfg, const GccParams& p) {
  Kernel k(cfg);

  std::shared_ptr<Space> driver_space;
  Thread* manager = nullptr;
  if (p.demand_paged) {
    // The driver's working memory is demand-paged through a user-mode
    // manager, so each unit's buffers fault in (exception IPC + hierarchy
    // walk), as a real compiler's address space would.
    ManagedSetup ms = BuildManagedSpace(k, 8 * 1024 * 1024, "gcc");
    driver_space = ms.child_space;
    manager = ms.manager_thread;
    k.StartThread(manager);
    driver_space->set_name("gcc-driver");
  } else {
    driver_space = k.CreateSpace("gcc-driver");
  }
  auto fs_space = k.CreateSpace("gcc-fileserver");
  constexpr uint32_t kAnon = 0x10000;
  if (!p.demand_paged) {
    driver_space->SetAnonRange(kAnon, 4 * 1024 * 1024);
  }
  fs_space->SetAnonRange(kAnon, 4 * 1024 * 1024);

  auto port = k.NewPort(2);
  const Handle sport = k.Install(fs_space.get(), port);
  const Handle cref = k.Install(driver_space.get(), k.NewReference(port));

  constexpr uint32_t kCounters = kAnon;
  constexpr uint32_t kReqBuf = kAnon + 0x40;
  constexpr uint32_t kStateBuf = kAnon + 0x80;  // worker ThreadState words
  constexpr uint32_t kSrcBuf = kAnon + kPageSize;
  const uint32_t obj_words = p.io_words_per_unit / 3;
  const uint32_t kObjBuf = kSrcBuf + 4 * p.io_words_per_unit;
  if (!p.demand_paged) {
    Prefault(driver_space.get(), kAnon, kPageSize + 4 * (p.io_words_per_unit + obj_words));
  }
  Prefault(fs_space.get(), kAnon, kPageSize + 4 * (p.io_words_per_unit + obj_words));

  // --- Driver program ---
  Assembler da("gcc-driver");
  const uint64_t front_compute = p.compute_per_unit * 3 / 5;
  const uint64_t back_compute = p.compute_per_unit - front_compute;

  // Worker ("cc1") entry lives at the top so its pc is known when the
  // driver bakes it into the ThreadState it writes: pure compute, then exit.
  const auto main_entry = da.NewLabel();
  da.Jmp(main_entry);
  const uint32_t worker_entry_pc = da.Here();
  EmitCompute(da, back_compute, 2000);
  da.MovImm(kRegB, 0);
  da.Halt();
  da.Bind(main_entry);

  EmitSys(da, kSysIpcClientConnect, cref);
  EmitCheckOk(da);
  EmitCountedLoop(da, kCounters + 0, p.units, [&] {
    // "Read the source file": request 1 word, receive io_words back.
    EmitSys(da, kSysIpcClientSendOverReceive, kUlibKeep, kReqBuf, 1, kSrcBuf,
            p.io_words_per_unit);
    EmitCheckOk(da);
    // Front end (cpp + parse).
    EmitCompute(da, front_compute, 2000);
    // Touch a fresh per-unit heap window (one byte per page): real compiles
    // grow their heap per file, so each unit faults new pages in through
    // the manager.
    {
      constexpr uint32_t kHeapBase = 0x300000;
      constexpr uint32_t kHeapPagesPerUnit = 24;
      const auto touch_loop = da.NewLabel();
      const auto touch_done = da.NewLabel();
      da.MovImm(kRegC, kCounters + 0);
      da.LoadW(kRegB, kRegC, 0);  // unit index
      da.MovImm(kRegSP, kHeapPagesPerUnit * kPageSize);
      da.Mul(kRegBP, kRegB, kRegSP);
      da.MovImm(kRegSP, kHeapBase);
      da.Add(kRegBP, kRegBP, kRegSP);  // window base
      da.MovImm(kRegC, kHeapPagesPerUnit);
      da.Bind(touch_loop);
      da.MovImm(kRegSP, 0);
      da.Beq(kRegC, kRegSP, touch_done);
      da.StoreB(kRegA, kRegBP, 0);
      da.AddImm(kRegBP, kRegBP, kPageSize);
      da.AddImm(kRegC, kRegC, 0xFFFFFFFF);  // -1
      da.Jmp(touch_loop);
      da.Bind(touch_done);
    }
    // Back end runs in a spawned "cc1" worker thread: create, point its
    // state at worker_entry, resume, join.
    EmitSys(da, kSysSpaceSelf);  // B = own space handle
    da.MovImm(kRegA, kSysThreadCreate);
    da.Syscall();
    EmitCheckOk(da);
    // Save the worker handle at kStateBuf + 64.
    da.MovImm(kRegC, kStateBuf + 64);
    da.StoreW(kRegB, kRegC, 0);
    // Build the worker's ThreadState: 8 GPRs, pc, pr0, pr1, priority.
    da.MovImm(kRegD, 0);
    da.MovImm(kRegC, kStateBuf);
    for (int i = 0; i < 8; ++i) {
      da.StoreW(kRegD, kRegC, 4 * i);
    }
    da.MovImm(kRegD, worker_entry_pc);  // pc
    da.StoreW(kRegD, kRegC, 32);
    da.MovImm(kRegD, 0);
    da.StoreW(kRegD, kRegC, 36);  // pr0
    da.StoreW(kRegD, kRegC, 40);  // pr1
    da.MovImm(kRegD, 4);
    da.StoreW(kRegD, kRegC, 44);  // priority
    // thread_set_state(B=handle, C=buf, D=words)
    da.MovImm(kRegC, kStateBuf + 64);
    da.LoadW(kRegB, kRegC, 0);
    da.MovImm(kRegC, kStateBuf);
    da.MovImm(kRegD, 12);
    da.MovImm(kRegA, kSysThreadSetState);
    da.Syscall();
    EmitCheckOk(da);
    // thread_resume + thread_join.
    da.MovImm(kRegC, kStateBuf + 64);
    da.LoadW(kRegB, kRegC, 0);
    da.MovImm(kRegA, kSysThreadResume);
    da.Syscall();
    EmitCheckOk(da);
    da.MovImm(kRegC, kStateBuf + 64);
    da.LoadW(kRegB, kRegC, 0);
    da.MovImm(kRegA, kSysThreadJoin);
    da.Syscall();
    EmitCheckOk(da);
    // "Write the object file".
    EmitSys(da, kSysIpcClientSend, kUlibKeep, kObjBuf, obj_words, 0, 0);
    EmitCheckOk(da);
  });
  EmitSys(da, kSysIpcClientDisconnect);
  da.Halt();
  auto driver_prog = da.Build();

  // --- File server ---
  Assembler fa("gcc-fs");
  EmitSys(fa, kSysIpcWaitReceive, sport, 0, 0, kReqBuf, 1);
  EmitCheckOk(fa);
  EmitCountedLoop(fa, kCounters + 0, p.units, [&] {
    // Reply with the "source file" contents.
    EmitSys(fa, kSysIpcServerAckSend, 0, kSrcBuf, p.io_words_per_unit, 0, 0);
    EmitCheckOk(fa);
    // Take the "object file".
    EmitSys(fa, kSysIpcServerReceive, 0, 0, 0, kObjBuf, obj_words);
    EmitCheckOk(fa);
    // Next unit's request (the final one ends with a disconnect error,
    // which just halts the loop thread below).
    EmitSys(fa, kSysIpcServerReceive, 0, 0, 0, kReqBuf, 1);
  });
  fa.Halt();

  driver_space->program = driver_prog;
  fs_space->program = fa.Build();
  Thread* driver = k.CreateThread(driver_space.get());
  Thread* fs = k.CreateThread(fs_space.get());
  k.StartThread(fs);
  k.StartThread(driver);

  const bool done = k.RunUntilThreadDone(driver, 600ull * 1000 * kNsPerMs);
  return Collect(k, done);
}

// ---------------------------------------------------------------------------
// c1m: the thread-scaling workload
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kC1mPorts = 8;    // pool width (ports == servers)
constexpr uint32_t kC1mBufSend = 0x10000;  // shared one-word RPC buffers
constexpr uint32_t kC1mBufRecv = 0x10010;
constexpr uint32_t kC1mSrvBuf = 0x10000;
constexpr uint32_t kC1mSrvReply = 0x10010;
constexpr uint32_t kC1mSlotBase = 0x20000;  // per-thread spill slots, 8 B each

}  // namespace

std::vector<Thread*> BuildC1mWorkload(Kernel& k, const C1mParams& p) {
  auto ss = k.CreateSpace("c1m-server");
  ss->SetAnonRange(0x10000, 1 << 16);
  // Client population. At num_cpus > 1 the clients are dealt round-robin
  // across one client space per CPU: CreateSpace assigns space-affinity
  // homes round-robin, so the population spreads over every CPU's run
  // queue and the epoch dispatcher's phase-A bursts actually parallelize.
  // (All spaces share the one program and the one server pool; nothing
  // about the per-client work changes.)
  const uint32_t shards =
      k.cfg.num_cpus > 1 ? static_cast<uint32_t>(k.cfg.num_cpus) : 1u;
  const uint32_t anon_size =
      kC1mSlotBase - 0x10000 + 8 * (p.clients + kC1mPorts + 8);
  std::vector<std::shared_ptr<Space>> css;
  for (uint32_t s = 0; s < shards; ++s) {
    // Covers the shared RPC buffers plus one 8-byte spill slot per handle
    // (slots are indexed by thread_self, which follows the port refs).
    auto cs = k.CreateSpace(shards == 1 ? "c1m-client"
                                        : "c1m-client" + std::to_string(s));
    cs->SetAnonRange(0x10000, anon_size);
    css.push_back(std::move(cs));
  }
  auto ms = k.CreateSpace("c1m-master");
  ms->SetAnonRange(0x10000, 1 << 14);

  // The pool: kC1mPorts ports behind one portset (host-side membership;
  // portset_add is what a server boot thread would run). Clients get refs
  // at contiguous handles so they can pick a port with arithmetic; the refs
  // are installed into every client shard first, so ref_base is the same
  // handle in each (fresh tables, identical install order).
  auto pset = k.NewPortset();
  const Handle ps_h = k.Install(ss.get(), pset);
  Handle ref_base = 0;
  for (uint32_t i = 0; i < kC1mPorts; ++i) {
    auto port = k.NewPort(/*badge=*/i + 1);
    k.Install(ss.get(), port);
    port->member_of = pset.get();
    pset->ports.push_back(port.get());
    for (uint32_t s = 0; s < shards; ++s) {
      const Handle r = k.Install(css[s].get(), k.NewReference(port));
      if (i == 0 && s == 0) ref_base = r;
      assert(r == ref_base + i && "port refs must be contiguous");
      (void)r;
    }
  }

  // Server: serve whichever port fires until the client goes away, then
  // back to the pool. Never halts -- a daemon, like the pager.
  Assembler sa("c1m-server");
  sa.MovImm(kRegSP, kFlukeOk);
  const auto souter = sa.NewLabel();
  const auto sinner = sa.NewLabel();
  sa.Bind(souter);
  EmitSys(sa, kSysIpcWaitReceive, ps_h, 0, 0, kC1mSrvBuf, 1);
  sa.Bne(kRegA, kRegSP, souter);
  sa.Bind(sinner);
  EmitSys(sa, kSysIpcServerAckSendOverReceive, 0, kC1mSrvReply, 1, kC1mSrvBuf, 1);
  sa.Beq(kRegA, kRegSP, sinner);
  EmitSys(sa, kSysIpcServerDisconnect);
  sa.Jmp(souter);
  ProgramRef server_prog = sa.Build();
  for (uint32_t i = 0; i < kC1mPorts; ++i) {
    k.StartThread(k.CreateThread(ss.get(), server_prog, /*priority=*/5));
  }

  // Client: spill the derived per-thread constants (port ref, sleep length)
  // to a self-indexed slot -- the syscall stubs clobber every argument
  // register -- then run `rounds` of connect/RPC/disconnect/sleep and park.
  // Statuses are deliberately ignored: the master's interrupt sweep may
  // land anywhere, and an aborted round is part of the storm.
  Assembler ca("c1m-client");
  EmitSys(ca, kSysThreadSelf);                  // B = self handle
  ca.MovImm(kRegC, 3);
  ca.Shl(kRegBP, kRegB, kRegC);
  ca.AddImm(kRegBP, kRegBP, kC1mSlotBase);      // BP = spill slot (callee-saved)
  ca.MovImm(kRegC, kC1mPorts - 1);
  ca.And(kRegC, kRegB, kRegC);
  ca.AddImm(kRegC, kRegC, ref_base);
  ca.StoreW(kRegC, kRegBP, 0);                  // slot[0] = my port's ref
  ca.MovImm(kRegC, 63);
  ca.And(kRegC, kRegB, kRegC);
  ca.AddImm(kRegC, kRegC, 100);
  ca.StoreW(kRegC, kRegBP, 4);                  // slot[4] = 100+(self&63) us
  for (uint32_t r = 0; r < p.rounds; ++r) {
    ca.LoadW(kRegB, kRegBP, 0);
    EmitSys(ca, kSysIpcClientConnect, kUlibKeep);
    EmitSys(ca, kSysIpcClientSendOverReceive, kUlibKeep, kC1mBufSend, 1, kC1mBufRecv, 1);
    EmitSys(ca, kSysIpcClientDisconnect);
    ca.LoadW(kRegB, kRegBP, 4);
    EmitSys(ca, kSysClockSleep, kUlibKeep);
  }
  EmitSys(ca, kSysClockSleep, p.park_us);
  ca.MovImm(kRegB, 0);
  ca.Halt();
  ProgramRef client_prog = ca.Build();

  std::vector<Thread*> done_order;
  done_order.reserve(p.clients + 1);
  std::vector<Handle> client_handles;
  client_handles.reserve(p.clients);
  for (uint32_t i = 0; i < p.clients; ++i) {
    Thread* t = k.CreateThread(css[i % shards].get(), client_prog, /*priority=*/2);
    client_handles.push_back(k.Install(ms.get(), k.threads().back()));
    k.StartThread(t);
    done_order.push_back(t);
  }

  // Master: sleep past the connect storm, then one interrupt per client --
  // the wakeup storm. Parked clients get their sleep timers cancelled;
  // stragglers get an aborted round; dead clients are a cheap no-op. The
  // auto-scaled delay (~30 us of serialized virtual time per client) lands
  // the sweep mid-run, when a steady-state population of clients is parked
  // -- that is what drives timer_cancels at every scale.
  const uint32_t sweep_delay_us =
      p.sweep_delay_us != 0 ? p.sweep_delay_us : 10000 + 30 * p.clients;
  Assembler ma("c1m-master");
  EmitSys(ma, kSysClockSleep, sweep_delay_us);
  for (const Handle h : client_handles) {
    EmitSys(ma, kSysThreadInterrupt, h);
  }
  ma.MovImm(kRegB, 0);
  ma.Halt();
  Thread* master = k.CreateThread(ms.get(), ma.Build(), /*priority=*/6);
  k.StartThread(master);
  done_order.push_back(master);
  return done_order;
}

C1mResult RunC1m(const KernelConfig& cfg, const C1mParams& p) {
  Kernel k(cfg);
  std::vector<Thread*> threads = BuildC1mWorkload(k, p);
  // Budget scales with N: the pool serializes rounds*N RPCs.
  const Time budget = kNsPerMs * (2000 + 2ull * p.clients);
  bool completed = true;
  const Time deadline = k.clock.now() + budget;
  for (Thread* t : threads) {
    if (!k.RunUntilThreadDone(t, deadline - k.clock.now())) {
      completed = false;
      break;
    }
  }
  C1mResult r;
  r.app = Collect(k, completed);
  r.clients = p.clients;
  r.bytes_per_thread =
      static_cast<double>(k.stats.blocked_frame_bytes_peak) / p.clients;
  r.wakeups_per_vsec = k.clock.now() == 0
                           ? 0.0
                           : static_cast<double>(k.stats.context_switches) *
                                 1e9 / static_cast<double>(k.clock.now());
  return r;
}

}  // namespace fluke
