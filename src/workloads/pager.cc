#include "src/workloads/pager.h"

#include "src/api/ulib.h"

namespace fluke {

ProgramRef BuildPagerProgram(const std::string& name, Handle keeper_port_handle,
                             uint32_t backing_base, uint32_t think_cycles) {
  Assembler a(name);
  // Message buffer lives just below the backing window, inside the
  // manager's anon range.
  const uint32_t msgbuf = backing_base - kPageSize;

  const auto loop = a.NewLabel();
  a.Bind(loop);
  // reply_wait_receive: complete the previous fault (if any), then wait for
  // the next one. B = keeper port, SI/DI = message buffer.
  EmitSys(a, kSysIpcReplyWaitReceive, keeper_port_handle, 0, 0, msgbuf, kFaultMsgWords);
  // On failure (e.g. port destroyed) the manager exits.
  {
    const auto ok = a.NewLabel();
    a.MovImm(kRegBP, kFlukeOk);
    a.Beq(kRegA, kRegBP, ok);
    a.Halt();
    a.Bind(ok);
  }
  // Model the manager's allocation bookkeeping.
  if (think_cycles > 0) {
    EmitCompute(a, think_cycles);
  }
  // page = fault_addr & ~(kPageSize-1)
  a.MovImm(kRegBP, msgbuf);
  a.LoadW(kRegC, kRegBP, 4 * kFaultMsgAddr);
  a.MovImm(kRegSP, ~kPageMask);
  a.And(kRegC, kRegC, kRegSP);
  // Touch the backing page (manager anon range -> kernel zero-fill): this
  // is what "provides" the page; the victim's retry then soft-resolves
  // through the mapping hierarchy.
  a.MovImm(kRegSP, backing_base);
  a.Add(kRegBP, kRegC, kRegSP);
  a.StoreB(kRegA, kRegBP);
  a.Jmp(loop);
  return a.Build();
}

ManagedSetup BuildManagedSpace(Kernel& k, uint32_t window_bytes, const std::string& name,
                               uint32_t think_cycles) {
  ManagedSetup s;
  s.window_bytes = window_bytes;

  s.manager_space = k.CreateSpace(name + "-mgr");
  // Anon range covers the message buffer page and the whole backing window.
  s.manager_space->SetAnonRange(kPagerBackingBase - kPageSize, window_bytes + kPageSize);

  s.keeper_port = k.NewPort(/*badge=*/0xFA);
  const Handle port_h = k.Install(s.manager_space.get(), s.keeper_port);

  s.child_space = k.CreateSpace(name + "-child");
  s.child_space->keeper = s.keeper_port.get();

  // Export the manager's backing window and import it at the child's [0,
  // window): child address p is backed by manager address backing_base + p.
  s.backing_region =
      k.NewRegion(s.manager_space.get(), kPagerBackingBase, window_bytes, kProtReadWrite);
  k.NewMapping(s.child_space.get(), 0, s.backing_region.get(), 0, window_bytes, kProtReadWrite);

  s.manager_space->program =
      BuildPagerProgram(name + "-pager", port_h, kPagerBackingBase, think_cycles);
  s.manager_thread = k.CreateThread(s.manager_space.get(), nullptr, /*priority=*/5);
  return s;
}

}  // namespace fluke
