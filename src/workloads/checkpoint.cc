#include "src/workloads/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>
#include <cassert>

namespace fluke {

CheckpointImage CaptureSpace(Kernel& k, Space& space) {
  k.trace.Record(k.clock.now(), TraceKind::kCheckpoint, 0,
                 static_cast<uint32_t>(space.id()), 0);
  CheckpointImage img;
  img.space_name = space.name();
  img.program_name = space.program != nullptr ? space.program->name() : "";
  img.anon_base = space.anon_base();
  img.anon_size = space.anon_size();

  // Stop every thread. A blocked thread rolls back transparently to its
  // committed restart point; a runnable/running thread is parked. After
  // this, every thread's registers are its complete state.
  for (Thread* t : space.threads) {
    if (t->run_state == ThreadRun::kDead) {
      continue;
    }
    const bool was_active = t->run_state == ThreadRun::kRunnable ||
                            t->run_state == ThreadRun::kBlocked ||
                            t->run_state == ThreadRun::kRunning;
    k.StopThread(t);
    CheckpointImage::ThreadImage ti;
    ThreadState st;
    const bool ok = k.GetThreadState(t, &st);
    assert(ok && "state extraction must be prompt");
    (void)ok;
    ti.state = st;
    ti.program_name = t->program != nullptr ? t->program->name() : "";
    ti.was_runnable = was_active;
    img.threads.push_back(ti);
  }

  // Memory: every mapped page, sorted for determinism. Pages are read
  // through the span-translation path (one TLB-backed translation + one
  // memcpy per page), the same fast path the IPC bulk copy uses.
  for (const auto& [page, pte] : space.page_table()) {
    CheckpointImage::PageImage pi;
    pi.vaddr = page << kPageShift;
    pi.prot = pte.prot;
    pi.data.resize(kPageSize);
    const Span s = space.TranslateSpan(pi.vaddr, kPageSize, kProtNone);
    assert(s.len == kPageSize);
    std::memcpy(pi.data.data(), s.ptr, s.len);
    img.pages.push_back(std::move(pi));
  }
  std::sort(img.pages.begin(), img.pages.end(),
            [](const auto& a, const auto& b) { return a.vaddr < b.vaddr; });

  // Handle table, slot order (slot 0 is the invalid sentinel).
  const auto& handles = space.handle_table();
  // Thread -> index map for mutex-owner translation.
  auto thread_index = [&](uint64_t tid) -> int {
    int i = 0;
    for (Thread* t : space.threads) {
      if (t->run_state == ThreadRun::kDead) {
        continue;
      }
      if (t->id() == tid) {
        return i;
      }
      ++i;
    }
    return -1;
  };
  for (size_t slot = 1; slot < handles.size(); ++slot) {
    CheckpointImage::ObjImage oi;
    const KernelObject* o = handles[slot].get();
    if (o != nullptr && o->alive()) {
      switch (o->type()) {
        case ObjType::kMutex: {
          const auto* m = static_cast<const Mutex*>(o);
          oi.kind = CheckpointImage::ObjKind::kMutex;
          oi.mutex_locked = m->locked;
          oi.mutex_owner_thread = m->locked ? thread_index(m->owner_tid) : -1;
          break;
        }
        case ObjType::kCond:
          oi.kind = CheckpointImage::ObjKind::kCond;
          break;
        case ObjType::kSpace:
          if (o == &space && space.self_handle == slot) {
            oi.kind = CheckpointImage::ObjKind::kSpaceSelf;
          }
          break;
        case ObjType::kThread: {
          const auto* t = static_cast<const Thread*>(o);
          if (t->space == &space && t->self_handle == slot &&
              t->run_state != ThreadRun::kDead) {
            oi.kind = CheckpointImage::ObjKind::kThreadSelf;
            oi.thread_index = thread_index(t->id());
          }
          break;
        }
        default:
          break;  // recorded as kEmpty
      }
    }
    img.objects.push_back(oi);
  }
  return img;
}

RestoreResult RestoreSpace(Kernel& k, const CheckpointImage& img,
                           const ProgramRegistry& programs, bool start) {
  RestoreResult r;
  auto fail = [&r](std::string why) {
    r.ok = false;
    r.error = std::move(why);
    return r;
  };
  r.space = k.CreateSpace(img.space_name);
  k.trace.Record(k.clock.now(), TraceKind::kCheckpoint, 0,
                 static_cast<uint32_t>(r.space->id()), 1);
  r.space->SetAnonRange(img.anon_base, img.anon_size);
  r.space->program = img.program_name.empty() ? nullptr : programs.Find(img.program_name);

  // Memory first (threads may be blocked mid-operation on it). Frame
  // allocation may fail transiently (injected exhaustion, a scavenger
  // catching up); retry a bounded number of times, then give up cleanly.
  for (const auto& pi : img.pages) {
    FrameId f = kInvalidFrame;
    for (uint32_t tries = 0; f == kInvalidFrame && tries <= kOomRetryLimit; ++tries) {
      if (tries != 0) {
        ++k.stats.oom_backoffs;
        k.Charge(k.costs.oom_backoff);
      }
      f = r.space->ProvidePage(pi.vaddr, pi.prot);
    }
    if (f == kInvalidFrame) {
      return fail("out of frames restoring page");
    }
    std::memcpy(k.phys.Data(f), pi.data.data(), kPageSize);
  }

  // Recreate the handle table strictly in slot order, so every handle
  // immediate baked into the program remains valid. CreateSpace already
  // filled the space-self slot; the image's slot 1 must agree.
  if (img.objects.empty() ||
      img.objects[0].kind != CheckpointImage::ObjKind::kSpaceSelf) {
    return fail("image slot 1 is not the space-self slot");
  }
  r.threads.resize(img.threads.size(), nullptr);
  // Deferred mutex-owner fixups (the owner thread's slot may come later).
  std::vector<std::pair<Mutex*, int>> owner_fixups;
  for (size_t i = 1; i < img.objects.size(); ++i) {
    const auto& oi = img.objects[i];
    switch (oi.kind) {
      case CheckpointImage::ObjKind::kSpaceSelf:
        return fail("duplicate space-self slot");
      case CheckpointImage::ObjKind::kThreadSelf: {
        if (oi.thread_index < 0 ||
            static_cast<size_t>(oi.thread_index) >= img.threads.size() ||
            r.threads[oi.thread_index] != nullptr) {
          return fail("thread-self slot references a missing or duplicate thread");
        }
        const auto& ti = img.threads[oi.thread_index];
        ProgramRef prog =
            ti.program_name.empty() ? nullptr : programs.Find(ti.program_name);
        Thread* t = k.CreateThread(r.space.get(), prog);  // installs the self slot
        if (t->self_handle != i + 1) {
          return fail("handle-slot drift while restoring threads");
        }
        if (!k.SetThreadState(t, ti.state)) {
          return fail("restored thread rejected its state");
        }
        r.threads[oi.thread_index] = t;
        break;
      }
      case CheckpointImage::ObjKind::kMutex: {
        auto m = k.NewMutex();
        m->locked = oi.mutex_locked;
        Mutex* raw = m.get();
        k.Install(r.space.get(), std::move(m));
        if (oi.mutex_locked && oi.mutex_owner_thread >= 0) {
          owner_fixups.emplace_back(raw, oi.mutex_owner_thread);
        }
        break;
      }
      case CheckpointImage::ObjKind::kCond:
        k.Install(r.space.get(), k.NewCond());
        break;
      case CheckpointImage::ObjKind::kEmpty:
        k.Install(r.space.get(), k.NewReference(nullptr));
        break;
    }
  }
  for (auto& [m, idx] : owner_fixups) {
    if (static_cast<size_t>(idx) < r.threads.size() && r.threads[idx] != nullptr) {
      m->owner_tid = r.threads[idx]->id();
    }
  }

  if (start) {
    for (size_t i = 0; i < r.threads.size(); ++i) {
      if (r.threads[i] != nullptr && img.threads[i].was_runnable) {
        k.ResumeThread(r.threads[i]);
      }
    }
  }
  return r;
}

void DestroySpaceThreads(Kernel& k, Space& space) {
  for (Thread* t : space.threads) {
    k.DestroyThread(t);
  }
}

}  // namespace fluke
