#include "src/workloads/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>
#include <cassert>

namespace fluke {

CheckpointImage CaptureSpace(Kernel& k, Space& space) {
  k.trace.Record(k.clock.now(), TraceKind::kCheckpoint, 0,
                 static_cast<uint32_t>(space.id()), 0);
  CheckpointImage img;
  img.space_name = space.name();
  img.program_name = space.program != nullptr ? space.program->name() : "";
  img.anon_base = space.anon_base();
  img.anon_size = space.anon_size();

  // Stop every thread. A blocked thread rolls back transparently to its
  // committed restart point; a runnable/running thread is parked. After
  // this, every thread's registers are its complete state.
  for (Thread* t : space.threads) {
    if (t->run_state == ThreadRun::kDead) {
      continue;
    }
    const bool was_active = t->run_state == ThreadRun::kRunnable ||
                            t->run_state == ThreadRun::kBlocked ||
                            t->run_state == ThreadRun::kRunning;
    k.StopThread(t);
    CheckpointImage::ThreadImage ti;
    ThreadState st;
    const bool ok = k.GetThreadState(t, &st);
    assert(ok && "state extraction must be prompt");
    (void)ok;
    ti.state = st;
    ti.program_name = t->program != nullptr ? t->program->name() : "";
    ti.was_runnable = was_active;
    img.threads.push_back(ti);
  }

  // Memory: every mapped page, sorted for determinism. Pages are read
  // through the span-translation path (one TLB-backed translation + one
  // memcpy per page), the same fast path the IPC bulk copy uses.
  for (const auto& [page, pte] : space.page_table()) {
    CheckpointImage::PageImage pi;
    pi.vaddr = page << kPageShift;
    pi.prot = pte.prot;
    pi.data.resize(kPageSize);
    const Span s = space.TranslateSpan(pi.vaddr, kPageSize, kProtNone);
    assert(s.len == kPageSize);
    std::memcpy(pi.data.data(), s.ptr, s.len);
    img.pages.push_back(std::move(pi));
  }
  std::sort(img.pages.begin(), img.pages.end(),
            [](const auto& a, const auto& b) { return a.vaddr < b.vaddr; });

  // Handle table, slot order (slot 0 is the invalid sentinel).
  const auto& handles = space.handle_table();
  // Thread -> index map for mutex-owner translation.
  auto thread_index = [&](uint64_t tid) -> int {
    int i = 0;
    for (Thread* t : space.threads) {
      if (t->run_state == ThreadRun::kDead) {
        continue;
      }
      if (t->id() == tid) {
        return i;
      }
      ++i;
    }
    return -1;
  };
  for (size_t slot = 1; slot < handles.size(); ++slot) {
    CheckpointImage::ObjImage oi;
    const KernelObject* o = handles[slot].get();
    if (o != nullptr && o->alive()) {
      switch (o->type()) {
        case ObjType::kMutex: {
          const auto* m = static_cast<const Mutex*>(o);
          oi.kind = CheckpointImage::ObjKind::kMutex;
          oi.mutex_locked = m->locked;
          oi.mutex_owner_thread = m->locked ? thread_index(m->owner_tid) : -1;
          break;
        }
        case ObjType::kCond:
          oi.kind = CheckpointImage::ObjKind::kCond;
          break;
        case ObjType::kSpace:
          if (o == &space && space.self_handle == slot) {
            oi.kind = CheckpointImage::ObjKind::kSpaceSelf;
          }
          break;
        case ObjType::kThread: {
          const auto* t = static_cast<const Thread*>(o);
          if (t->space == &space && t->self_handle == slot &&
              t->run_state != ThreadRun::kDead) {
            oi.kind = CheckpointImage::ObjKind::kThreadSelf;
            oi.thread_index = thread_index(t->id());
          }
          break;
        }
        default:
          break;  // recorded as kEmpty
      }
    }
    img.objects.push_back(oi);
  }
  return img;
}

RestoreResult RestoreSpace(Kernel& k, const CheckpointImage& img,
                           const ProgramRegistry& programs, bool start) {
  RestoreResult r;
  auto fail = [&r](std::string why) {
    r.ok = false;
    r.error = std::move(why);
    return r;
  };
  r.space = k.CreateSpace(img.space_name);
  k.trace.Record(k.clock.now(), TraceKind::kCheckpoint, 0,
                 static_cast<uint32_t>(r.space->id()), 1);
  r.space->SetAnonRange(img.anon_base, img.anon_size);
  r.space->program = img.program_name.empty() ? nullptr : programs.Find(img.program_name);

  // Memory first (threads may be blocked mid-operation on it). Frame
  // allocation may fail transiently (injected exhaustion, a scavenger
  // catching up); retry a bounded number of times, then give up cleanly.
  for (const auto& pi : img.pages) {
    FrameId f = kInvalidFrame;
    for (uint32_t tries = 0; f == kInvalidFrame && tries <= kOomRetryLimit; ++tries) {
      if (tries != 0) {
        ++k.stats.oom_backoffs;
        k.Charge(k.costs.oom_backoff);
      }
      f = r.space->ProvidePage(pi.vaddr, pi.prot);
    }
    if (f == kInvalidFrame) {
      return fail("out of frames restoring page");
    }
    std::memcpy(k.phys.Data(f), pi.data.data(), kPageSize);
  }

  // Recreate the handle table strictly in slot order, so every handle
  // immediate baked into the program remains valid. CreateSpace already
  // filled the space-self slot; the image's slot 1 must agree.
  if (img.objects.empty() ||
      img.objects[0].kind != CheckpointImage::ObjKind::kSpaceSelf) {
    return fail("image slot 1 is not the space-self slot");
  }
  r.threads.resize(img.threads.size(), nullptr);
  // Deferred mutex-owner fixups (the owner thread's slot may come later).
  std::vector<std::pair<Mutex*, int>> owner_fixups;
  for (size_t i = 1; i < img.objects.size(); ++i) {
    const auto& oi = img.objects[i];
    switch (oi.kind) {
      case CheckpointImage::ObjKind::kSpaceSelf:
        return fail("duplicate space-self slot");
      case CheckpointImage::ObjKind::kThreadSelf: {
        if (oi.thread_index < 0 ||
            static_cast<size_t>(oi.thread_index) >= img.threads.size() ||
            r.threads[oi.thread_index] != nullptr) {
          return fail("thread-self slot references a missing or duplicate thread");
        }
        const auto& ti = img.threads[oi.thread_index];
        ProgramRef prog =
            ti.program_name.empty() ? nullptr : programs.Find(ti.program_name);
        Thread* t = k.CreateThread(r.space.get(), prog);  // installs the self slot
        if (t->self_handle != i + 1) {
          return fail("handle-slot drift while restoring threads");
        }
        if (!k.SetThreadState(t, ti.state)) {
          return fail("restored thread rejected its state");
        }
        r.threads[oi.thread_index] = t;
        break;
      }
      case CheckpointImage::ObjKind::kMutex: {
        auto m = k.NewMutex();
        m->locked = oi.mutex_locked;
        Mutex* raw = m.get();
        k.Install(r.space.get(), std::move(m));
        if (oi.mutex_locked && oi.mutex_owner_thread >= 0) {
          owner_fixups.emplace_back(raw, oi.mutex_owner_thread);
        }
        break;
      }
      case CheckpointImage::ObjKind::kCond:
        k.Install(r.space.get(), k.NewCond());
        break;
      case CheckpointImage::ObjKind::kEmpty:
        k.Install(r.space.get(), k.NewReference(nullptr));
        break;
    }
  }
  for (auto& [m, idx] : owner_fixups) {
    if (static_cast<size_t>(idx) < r.threads.size() && r.threads[idx] != nullptr) {
      m->owner_tid = r.threads[idx]->id();
    }
  }

  if (start) {
    for (size_t i = 0; i < r.threads.size(); ++i) {
      if (r.threads[i] != nullptr && img.threads[i].was_runnable) {
        k.ResumeThread(r.threads[i]);
      }
    }
  }
  return r;
}

void DestroySpaceThreads(Kernel& k, Space& space) {
  for (Thread* t : space.threads) {
    k.DestroyThread(t);
  }
}

// ---------------------------------------------------------------------------
// Machine-wide capture (PR 8).
// ---------------------------------------------------------------------------

namespace {

// Builds the machine-wide metadata snapshot -- spaces, resident page
// directories, handle tables, and the global thread/port/portset tables --
// without disturbing any thread (no StopThread: registers of a non-running
// thread are always a committed restart point). Page *data* is not captured
// here; that is the mark/drain protocol's job. Returns false with a
// structured error on anything outside the checkpointable subset.
bool CaptureMachineMeta(Kernel& k, const std::vector<Space*>& live, MachineImage* img,
                        std::string* error) {
  img->clock_ns = k.clock.now();

  // Global thread table: space order, then TCB order, skipping zombies.
  std::unordered_map<const Thread*, int> thread_idx;
  for (size_t si = 0; si < live.size(); ++si) {
    for (Thread* t : live[si]->threads) {
      if (t->run_state == ThreadRun::kDead) {
        continue;
      }
      if (t->legacy) {
        *error = "legacy threads are not checkpointable";
        return false;
      }
      if (t->exception_victim != nullptr) {
        *error = "undelivered fault IPC (server owes a reply)";
        return false;
      }
      thread_idx.emplace(t, static_cast<int>(img->threads.size()));
      MachineImage::ThreadImage ti;
      ti.space_index = static_cast<uint32_t>(si);
      if (!k.GetThreadState(t, &ti.state)) {
        *error = "cannot capture a thread while it is on a CPU";
        return false;
      }
      ti.program_name = t->program != nullptr ? t->program->name() : "";
      ti.was_runnable = t->run_state == ThreadRun::kRunnable ||
                        t->run_state == ThreadRun::kBlocked ||
                        t->run_state == ThreadRun::kRunning;
      ti.ipc_is_server = t->ipc_is_server;
      ti.port_badge = t->port_badge;
      img->threads.push_back(std::move(ti));
    }
  }
  // IPC links second pass (a peer may sit later in the global order).
  {
    size_t g = 0;
    for (Space* s : live) {
      for (Thread* t : s->threads) {
        if (t->run_state == ThreadRun::kDead) {
          continue;
        }
        if (t->ipc_peer != nullptr) {
          auto it = thread_idx.find(t->ipc_peer);
          if (it == thread_idx.end()) {
            *error = "ipc peer is not a captured thread";
            return false;
          }
          img->threads[g].ipc_peer = it->second;
        }
        ++g;
      }
    }
  }

  // Ports and portsets get small-integer keys in discovery order (space
  // order, slot order, portset-member order) -- deterministic, so the same
  // machine always serializes to the same bytes.
  std::unordered_map<const Port*, int> port_key;
  std::unordered_map<const Portset*, int> pset_key;
  bool bad = false;
  auto ensure_port = [&](Port* p) -> int {
    auto [it, fresh] = port_key.emplace(p, static_cast<int>(img->ports.size()));
    if (fresh) {
      MachineImage::PortImage pi;
      pi.badge = p->badge;
      for (const KernelMsg& m : p->kmsgs) {
        if (m.victim != nullptr) {
          *error = "undelivered fault IPC (queued message has a victim)";
          bad = true;
          break;
        }
        MachineImage::KMsgImage mi;
        std::memcpy(mi.words, m.words, sizeof(mi.words));
        mi.len = m.len;
        mi.badge = m.badge;
        pi.kmsgs.push_back(mi);
      }
      img->ports.push_back(std::move(pi));
    }
    return it->second;
  };

  for (size_t si = 0; si < live.size(); ++si) {
    Space* s = live[si];
    if (!s->mappings().empty() || !s->regions.empty()) {
      *error = "spaces with Mappings or Regions are not checkpointable";
      return false;
    }
    if (s->keeper != nullptr) {
      *error = "spaces with a keeper port are not checkpointable";
      return false;
    }
    MachineImage::SpaceImage sp;
    sp.name = s->name();
    sp.program_name = s->program != nullptr ? s->program->name() : "";
    sp.anon_base = s->anon_base();
    sp.anon_size = s->anon_size();
    for (const auto& [page, pte] : s->page_table()) {
      sp.resident.push_back({page << kPageShift, pte.prot});
    }
    std::sort(sp.resident.begin(), sp.resident.end(),
              [](const auto& a, const auto& b) { return a.vaddr < b.vaddr; });

    const auto& handles = s->handle_table();
    for (size_t slot = 1; slot < handles.size(); ++slot) {
      MachineImage::ObjImage oi;
      KernelObject* o = handles[slot].get();
      if (o != nullptr && o->alive()) {
        switch (o->type()) {
          case ObjType::kMutex: {
            const auto* m = static_cast<const Mutex*>(o);
            oi.kind = MachineImage::ObjKind::kMutex;
            oi.mutex_locked = m->locked;
            if (m->locked) {
              for (const auto& [t, idx] : thread_idx) {
                if (t->id() == m->owner_tid) {
                  oi.mutex_owner_thread = idx;
                  break;
                }
              }
            }
            break;
          }
          case ObjType::kCond:
            oi.kind = MachineImage::ObjKind::kCond;
            break;
          case ObjType::kSpace:
            if (o != s || s->self_handle != slot) {
              *error = "cross-space space handle is not checkpointable";
              return false;
            }
            oi.kind = MachineImage::ObjKind::kSpaceSelf;
            break;
          case ObjType::kThread: {
            auto* t = static_cast<Thread*>(o);
            if (t->run_state == ThreadRun::kDead) {
              break;  // zombie slot -> kEmpty (join across a checkpoint is lost)
            }
            auto it = thread_idx.find(t);
            if (it == thread_idx.end()) {
              *error = "thread handle to an uncaptured thread";
              return false;
            }
            oi.kind = (t->space == s && t->self_handle == slot)
                          ? MachineImage::ObjKind::kThreadSelf
                          : MachineImage::ObjKind::kThreadRef;
            oi.index = it->second;
            break;
          }
          case ObjType::kPort:
            oi.kind = MachineImage::ObjKind::kPort;
            oi.index = ensure_port(static_cast<Port*>(o));
            break;
          case ObjType::kPortset: {
            auto* ps = static_cast<Portset*>(o);
            auto [it, fresh] = pset_key.emplace(ps, static_cast<int>(img->portsets.size()));
            if (fresh) {
              MachineImage::PortsetImage pi;
              for (Port* member : ps->ports) {
                pi.member_ports.push_back(static_cast<uint32_t>(ensure_port(member)));
              }
              img->portsets.push_back(std::move(pi));
            }
            oi.kind = MachineImage::ObjKind::kPortset;
            oi.index = it->second;
            break;
          }
          case ObjType::kReference: {
            const auto* ref = static_cast<const Reference*>(o);
            KernelObject* target = ref->target.get();
            if (target == nullptr || !target->alive()) {
              break;  // dangling reference -> kEmpty
            }
            if (target->type() != ObjType::kPort) {
              *error = "reference to a non-port object is not checkpointable";
              return false;
            }
            oi.kind = MachineImage::ObjKind::kPortRef;
            oi.index = ensure_port(static_cast<Port*>(target));
            break;
          }
          default:
            *error = "unsupported object kind in a handle table";
            return false;
        }
        if (bad) {
          return false;
        }
      }
      sp.objects.push_back(oi);
    }
    img->spaces.push_back(std::move(sp));
  }
  return true;
}

}  // namespace

bool ConcurrentCkpt::Begin(Kernel& k, bool delta, std::string* error, bool stw) {
  std::string scratch;
  if (error == nullptr) {
    error = &scratch;
  }
  assert(kernel_ == nullptr && "Begin on an active capture");
  if (k.cfg.num_cpus > 1) {
    *error = "machine checkpointing requires num_cpus == 1";
    return false;
  }
  if (k.ckpt_session() != nullptr) {
    *error = "a capture is already in progress";
    return false;
  }
  if (delta && k.stats.ckpt_generations == 0) {
    *error = "delta checkpoint without a prior full image";
    return false;
  }
  std::vector<Space*> live;
  for (const auto& s : k.spaces()) {
    if (s->alive()) {
      live.push_back(s.get());
    }
  }
  img_ = MachineImage{};
  if (!CaptureMachineMeta(k, live, &img_, error)) {
    img_ = MachineImage{};
    return false;
  }

  // Serial mark phase: flip every page to capture to checkpoint-CoW. This is
  // the only part of the capture that is "inside" the stop window; its
  // modeled cost is what ckpt_pause_hist measures. The stop-the-world cost
  // model instead charges a full page copy per page -- same image, much
  // longer pause.
  session_ = CkptSession{};
  session_.spaces.resize(live.size());
  size_t marked = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    session_.spaces[i].space = live[i];
    live[i]->SetDirtyTracking();
    live[i]->CkptAttach(&session_, static_cast<uint32_t>(i));
    const size_t n = live[i]->CkptMark(delta);
    marked += n;
    if (k.trace.enabled()) {
      k.trace.Record(k.clock.now(), TraceKind::kCkptMark, 0,
                     static_cast<uint32_t>(live[i]->id()), static_cast<uint32_t>(n));
    }
  }
  k.CkptAttachSession(&session_);
  k.stats.ckpt_mark_pages += marked;
  const uint64_t per_page = stw ? k.costs.ckpt_copy_page : k.costs.ckpt_mark_page;
  k.stats.ckpt_pause_hist.Add(Cycles(k.costs.ckpt_begin + marked * per_page));
  kernel_ = &k;
  delta_ = delta;
  if (delta) {
    // Provisional chain position; the restart-log layer assigns the real
    // generation numbers and the parent digest after serialization.
    img_.generation = 2;
    img_.base_generation = 1;
  }
  return true;
}

MachineImage ConcurrentCkpt::Finish() {
  assert(kernel_ != nullptr && "Finish without Begin");
  assert(session_.done() && "Finish before the drain completed");
  Kernel& k = *kernel_;
  size_t pages = 0;
  for (size_t i = 0; i < session_.spaces.size(); ++i) {
    CkptSpaceCapture& sc = session_.spaces[i];
    for (CkptPage& rec : sc.pages) {
      assert(rec.captured);
      CheckpointImage::PageImage pi;
      pi.vaddr = rec.pagenum << kPageShift;
      pi.prot = rec.prot;
      pi.data = std::move(rec.data);
      img_.spaces[i].pages.push_back(std::move(pi));
    }
    pages += sc.pages.size();
    sc.space->CkptDetach();
  }
  k.CkptDetachSession();
  kernel_ = nullptr;
  if (delta_) {
    k.stats.ckpt_pages_delta += pages;
  } else {
    k.stats.ckpt_pages_full += pages;
  }
  ++k.stats.ckpt_generations;
  return std::move(img_);
}

void ConcurrentCkpt::Abort() {
  if (kernel_ == nullptr) {
    return;
  }
  Kernel& k = *kernel_;
  k.CkptDrainAll();  // clears every outstanding mark bit
  for (CkptSpaceCapture& sc : session_.spaces) {
    sc.space->CkptDetach();
  }
  k.CkptDetachSession();
  kernel_ = nullptr;
}

bool CaptureMachine(Kernel& k, bool delta, MachineImage* out, std::string* error) {
  ConcurrentCkpt c;
  if (!c.Begin(k, delta, error, /*stw=*/true)) {
    return false;
  }
  k.CkptDrainAll();
  *out = c.Finish();
  return true;
}

MachineRestoreResult RestoreMachine(Kernel& k, const MachineImage& img,
                                    const ProgramRegistry& programs, bool start) {
  MachineRestoreResult r;
  auto fail = [&r](std::string why) -> MachineRestoreResult& {
    r.ok = false;
    r.error = std::move(why);
    return r;
  };
  if (k.cfg.num_cpus > 1) {
    return fail("machine restore requires num_cpus == 1");
  }
  if (img.base_generation != 0) {
    return fail("cannot restore an unmerged delta image");
  }
  for (const auto& ti : img.threads) {
    if (ti.space_index >= img.spaces.size()) {
      return fail("thread references a missing space");
    }
  }
  // Restore the capture-instant virtual time, so timestamps in the restored
  // run continue from where the image was taken.
  if (img.clock_ns > k.clock.now()) {
    k.ChargeNs(img.clock_ns - k.clock.now());
  }

  // Ports and portsets are created up front: handle tables may hold
  // references to ports that live in a space restored later (the rpc
  // client's Reference precedes the server space's port slot).
  std::vector<std::shared_ptr<Port>> ports;
  for (const auto& pi : img.ports) {
    auto p = k.NewPort(pi.badge);
    for (const auto& mi : pi.kmsgs) {
      KernelMsg m;
      std::memcpy(m.words, mi.words, sizeof(m.words));
      m.len = mi.len;
      m.badge = mi.badge;
      p->kmsgs.push_back(m);  // direct: no server exists yet to wake
    }
    ports.push_back(std::move(p));
  }
  std::vector<std::shared_ptr<Portset>> psets;
  for (size_t i = 0; i < img.portsets.size(); ++i) {
    psets.push_back(k.NewPortset());
  }

  r.threads.resize(img.threads.size(), nullptr);
  struct ThreadRefFixup {
    Space* space;
    Handle slot;
    int index;
  };
  std::vector<ThreadRefFixup> thread_fixups;
  std::vector<std::pair<Mutex*, int>> owner_fixups;

  for (size_t si = 0; si < img.spaces.size(); ++si) {
    const auto& sp = img.spaces[si];
    auto space = k.CreateSpace(sp.name);
    k.trace.Record(k.clock.now(), TraceKind::kCheckpoint, 0,
                   static_cast<uint32_t>(space->id()), 1);
    space->SetAnonRange(sp.anon_base, sp.anon_size);
    space->program = sp.program_name.empty() ? nullptr : programs.Find(sp.program_name);
    r.spaces.push_back(space);

    // Memory first (threads may be blocked mid-operation on it), with the
    // same bounded retry against transient frame exhaustion RestoreSpace
    // uses.
    for (const auto& pi : sp.pages) {
      if (pi.data.size() != kPageSize) {
        return fail("page image with a bad size");
      }
      FrameId f = kInvalidFrame;
      for (uint32_t tries = 0; f == kInvalidFrame && tries <= kOomRetryLimit; ++tries) {
        if (tries != 0) {
          ++k.stats.oom_backoffs;
          k.Charge(k.costs.oom_backoff);
        }
        f = space->ProvidePage(pi.vaddr, pi.prot);
      }
      if (f == kInvalidFrame) {
        return fail("out of frames restoring page");
      }
      std::memcpy(k.phys.Data(f), pi.data.data(), kPageSize);
    }

    // Handle table strictly in slot order (slot = index + 1), so every
    // baked-in handle immediate stays valid. CreateSpace filled slot 1.
    if (sp.objects.empty() || sp.objects[0].kind != MachineImage::ObjKind::kSpaceSelf) {
      return fail("image slot 1 is not the space-self slot");
    }
    for (size_t i = 1; i < sp.objects.size(); ++i) {
      const auto& oi = sp.objects[i];
      const Handle want = static_cast<Handle>(i + 1);
      Handle got = kInvalidHandle;
      switch (oi.kind) {
        case MachineImage::ObjKind::kSpaceSelf:
          return fail("duplicate space-self slot");
        case MachineImage::ObjKind::kThreadSelf: {
          if (oi.index < 0 || static_cast<size_t>(oi.index) >= img.threads.size() ||
              r.threads[oi.index] != nullptr) {
            return fail("thread-self slot references a missing or duplicate thread");
          }
          const auto& ti = img.threads[oi.index];
          if (ti.space_index != si) {
            return fail("thread-self slot in the wrong space");
          }
          ProgramRef prog =
              ti.program_name.empty() ? nullptr : programs.Find(ti.program_name);
          Thread* t = k.CreateThread(space.get(), prog);  // installs the self slot
          got = t->self_handle;
          if (!k.SetThreadState(t, ti.state)) {
            return fail("restored thread rejected its state");
          }
          r.threads[oi.index] = t;
          break;
        }
        case MachineImage::ObjKind::kThreadRef: {
          if (oi.index < 0 || static_cast<size_t>(oi.index) >= img.threads.size()) {
            return fail("thread reference to a missing thread");
          }
          if (r.threads[oi.index] != nullptr) {
            got = k.Install(space.get(), k.SharedThread(r.threads[oi.index]));
          } else {
            // Forward reference: the thread's own space comes later in the
            // image. Install a placeholder to hold the slot, patch below.
            got = k.Install(space.get(), k.NewReference(nullptr));
            thread_fixups.push_back({space.get(), want, oi.index});
          }
          break;
        }
        case MachineImage::ObjKind::kMutex: {
          auto m = k.NewMutex();
          m->locked = oi.mutex_locked;
          Mutex* raw = m.get();
          got = k.Install(space.get(), std::move(m));
          if (oi.mutex_locked && oi.mutex_owner_thread >= 0) {
            owner_fixups.emplace_back(raw, oi.mutex_owner_thread);
          }
          break;
        }
        case MachineImage::ObjKind::kCond:
          got = k.Install(space.get(), k.NewCond());
          break;
        case MachineImage::ObjKind::kPort:
          if (oi.index < 0 || static_cast<size_t>(oi.index) >= ports.size()) {
            return fail("port slot references a missing port");
          }
          got = k.Install(space.get(), ports[oi.index]);
          break;
        case MachineImage::ObjKind::kPortRef:
          if (oi.index < 0 || static_cast<size_t>(oi.index) >= ports.size()) {
            return fail("port reference to a missing port");
          }
          got = k.Install(space.get(), k.NewReference(ports[oi.index]));
          break;
        case MachineImage::ObjKind::kPortset:
          if (oi.index < 0 || static_cast<size_t>(oi.index) >= psets.size()) {
            return fail("portset slot references a missing portset");
          }
          got = k.Install(space.get(), psets[oi.index]);
          break;
        case MachineImage::ObjKind::kEmpty:
          got = k.Install(space.get(), k.NewReference(nullptr));
          break;
      }
      if (got != want) {
        return fail("handle-slot drift while restoring objects");
      }
    }
  }

  // Fixup passes, now that every object exists.
  for (const auto& fx : thread_fixups) {
    if (r.threads[fx.index] == nullptr) {
      return fail("thread reference to a thread with no self slot");
    }
    fx.space->ReplaceHandle(fx.slot, k.SharedThread(r.threads[fx.index]));
  }
  for (size_t j = 0; j < img.portsets.size(); ++j) {
    for (uint32_t key : img.portsets[j].member_ports) {
      if (key >= ports.size()) {
        return fail("portset member references a missing port");
      }
      ports[key]->member_of = psets[j].get();
      psets[j]->ports.push_back(ports[key].get());
    }
  }
  for (auto& [m, idx] : owner_fixups) {
    if (static_cast<size_t>(idx) < r.threads.size() && r.threads[idx] != nullptr) {
      m->owner_tid = r.threads[idx]->id();
    }
  }
  // Live IPC connections: the link lives in the TCB (paper section 4.3), so
  // a blocked thread's restart op (e.g. a keep-connection send-over-receive)
  // finds its rendezvous partner exactly as the original would have.
  for (size_t g = 0; g < img.threads.size(); ++g) {
    const auto& ti = img.threads[g];
    Thread* t = r.threads[g];
    if (t == nullptr) {
      return fail("captured thread has no self slot in its space");
    }
    t->ipc_is_server = ti.ipc_is_server;
    t->port_badge = ti.port_badge;
    if (ti.ipc_peer >= 0) {
      if (static_cast<size_t>(ti.ipc_peer) >= r.threads.size() ||
          r.threads[ti.ipc_peer] == nullptr) {
        return fail("ipc peer missing from the restored machine");
      }
      t->ipc_peer = r.threads[ti.ipc_peer];
    }
  }

  if (start) {
    for (size_t g = 0; g < img.threads.size(); ++g) {
      if (img.threads[g].was_runnable) {
        k.ResumeThread(r.threads[g]);
      }
    }
  }
  return r;
}

bool MergeImageChain(const std::vector<const MachineImage*>& chain, MachineImage* out,
                     std::string* error) {
  if (chain.empty()) {
    *error = "empty image chain";
    return false;
  }
  if (chain[0]->base_generation != 0) {
    *error = "chain does not start with a full image";
    return false;
  }
  MachineImage merged = *chain[0];
  for (size_t ci = 1; ci < chain.size(); ++ci) {
    const MachineImage& d = *chain[ci];
    if (d.base_generation == 0) {
      *error = "unexpected full image inside a delta chain";
      return false;
    }
    if (d.base_generation != merged.generation) {
      *error = "generation gap in delta chain";
      return false;
    }
    // The delta's metadata (spaces, threads, objects, resident directories)
    // is authoritative; page data comes from the delta where present --
    // pages dirtied since the parent -- and from the accumulated base
    // otherwise. The resident directory filters out pages unmapped since.
    std::unordered_map<std::string, const MachineImage::SpaceImage*> prev;
    for (const auto& s : merged.spaces) {
      prev.emplace(s.name, &s);
    }
    MachineImage next = d;
    for (auto& s : next.spaces) {
      std::unordered_map<uint32_t, CheckpointImage::PageImage*> have;
      for (auto& p : s.pages) {
        have.emplace(p.vaddr, &p);
      }
      std::unordered_map<uint32_t, const CheckpointImage::PageImage*> base;
      auto pit = prev.find(s.name);
      if (pit != prev.end()) {
        for (const auto& p : pit->second->pages) {
          base.emplace(p.vaddr, &p);
        }
      }
      std::vector<CheckpointImage::PageImage> full;
      full.reserve(s.resident.size());
      for (const auto& rp : s.resident) {
        auto hit = have.find(rp.vaddr);
        if (hit != have.end()) {
          full.push_back(std::move(*hit->second));
          continue;
        }
        auto bit = base.find(rp.vaddr);
        if (bit == base.end()) {
          *error = "delta chain missing page data for a resident page";
          return false;
        }
        CheckpointImage::PageImage pi = *bit->second;
        pi.prot = rp.prot;
        full.push_back(std::move(pi));
      }
      s.pages = std::move(full);
    }
    next.base_generation = 0;
    next.parent_digest = 0;
    merged = std::move(next);
  }
  *out = std::move(merged);
  return true;
}

}  // namespace fluke
