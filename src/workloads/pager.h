// User-mode memory manager (pager).
//
// Reproduces the setup the paper's memtest runs under: a child space whose
// keeper port is served by a manager thread in another space. The child has
// one Mapping over the manager's backing region; its pages are absent until
// the manager provides them, so:
//   * first touch of a page -> HARD fault: exception IPC to the manager,
//     which zero-fills the backing page (its own anon range) and replies;
//   * the retried access -> SOFT fault: the kernel walks the mapping
//     hierarchy, finds the now-present backing page, installs the PTE.
// One manager round trip + one kernel walk per page, exactly the cost
// structure Tables 3 and 5 depend on.

#ifndef SRC_WORKLOADS_PAGER_H_
#define SRC_WORKLOADS_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/kern/kernel.h"

namespace fluke {

struct ManagedSetup {
  std::shared_ptr<Space> manager_space;
  Thread* manager_thread = nullptr;
  std::shared_ptr<Space> child_space;
  std::shared_ptr<Port> keeper_port;
  std::shared_ptr<Region> backing_region;
  uint32_t window_bytes = 0;  // child demand-backed range is [0, window)
};

// Where the manager keeps the backing memory in its own space.
inline constexpr uint32_t kPagerBackingBase = 0x40000000;

// Creates the manager space + thread + child space. The child's [0, window)
// is demand-backed through the manager. `think_cycles` models the manager's
// per-fault bookkeeping (allocation policy, queueing) and is the calibration
// knob for the hard-fault remedy cost (Table 3).
//
// The manager thread is created but not started; call k.StartThread().
ManagedSetup BuildManagedSpace(Kernel& k, uint32_t window_bytes, const std::string& name,
                               uint32_t think_cycles = 19000);

// Builds only the manager program (for tests that arrange spaces manually).
// Handles are baked in as immediates.
ProgramRef BuildPagerProgram(const std::string& name, Handle keeper_port_handle,
                             uint32_t backing_base, uint32_t think_cycles);

}  // namespace fluke

#endif  // SRC_WORKLOADS_PAGER_H_
