// Tiny leveled logger for the simulator.
//
// Logging is off by default (benchmarks must not pay for it); tests and
// debugging sessions can raise the level. Printf-style because the kernel
// logs from hot paths and we do not want iostream formatting costs.

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <cstdarg>

namespace fluke {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogImpl(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace fluke

#define FLUKE_LOG(level, ...)                       \
  do {                                              \
    if (::fluke::GetLogLevel() >= (level)) {        \
      ::fluke::LogImpl((level), __VA_ARGS__);       \
    }                                               \
  } while (0)

#define FLOG_ERROR(...) FLUKE_LOG(::fluke::LogLevel::kError, __VA_ARGS__)
#define FLOG_WARN(...) FLUKE_LOG(::fluke::LogLevel::kWarn, __VA_ARGS__)
#define FLOG_INFO(...) FLUKE_LOG(::fluke::LogLevel::kInfo, __VA_ARGS__)
#define FLOG_DEBUG(...) FLUKE_LOG(::fluke::LogLevel::kDebug, __VA_ARGS__)
#define FLOG_TRACE(...) FLUKE_LOG(::fluke::LogLevel::kTrace, __VA_ARGS__)

#endif  // SRC_BASE_LOG_H_
