// Kernel-internal status codes.
//
// These are the result codes syscall handlers return *inside* the kernel.
// Per the paper (section 5.1), "Return values in the kernel are only used for
// kernel-internal exception processing; results intended to be seen by user
// code are returned by modifying the thread's saved user-mode register state."
// User-visible error codes live in src/api/abi.h.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>

namespace fluke {

enum class KStatus : int32_t {
  kOk = 0,
  // The operation must wait; the thread has been enqueued on a wait queue
  // after committing a consistent restart state to its user registers.
  kBlocked,
  // The thread hit an explicit preemption point with a preemption pending.
  // Registers already name the restart point.
  kPreempted,
  // The operation was cancelled (state extraction / thread_interrupt);
  // registers already name the restart point.
  kCancelled,
  // A hard page fault must be serviced by a user-mode manager. The faulting
  // work since the last commit point is rolled back (redone on restart).
  kHardFault,
  // Kernel-internal error conditions (translated to user codes at exit).
  kBadHandle,
  kBadType,
  kBadAddress,
  kBadArgument,
  kNoMemory,
  kNotConnected,
  kAlreadyConnected,
  kNoPager,
  kProtection,
  kDead,
};

// Returns a stable human-readable name for logging and tests.
const char* KStatusName(KStatus s);

}  // namespace fluke

#endif  // SRC_BASE_STATUS_H_
