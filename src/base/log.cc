#include "src/base/log.h"

#include <cstdio>

namespace fluke {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogImpl(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[fluke:%s] ", LevelTag(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace fluke
