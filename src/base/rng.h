// Deterministic pseudo-random number generator (xorshift128+).
//
// Every source of "randomness" in the simulator (workload data patterns,
// fault-injection points, property-test schedules) draws from a seeded Rng so
// that all tests and benchmarks are exactly reproducible.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace fluke {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    s0_ = seed ^ 0x2545f4914f6cdd1dull;
    s1_ = seed * 0x9e3779b97f4a7c15ull + 1;
    // Scramble the initial state so small seeds diverge quickly.
    for (int i = 0; i < 8; ++i) {
      Next64();
    }
  }

  uint64_t Next64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t Below(uint64_t bound) { return Next64() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace fluke

#endif  // SRC_BASE_RNG_H_
