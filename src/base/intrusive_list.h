// A minimal intrusive doubly-linked list.
//
// Kernel objects that can sit on wait queues or run queues embed a ListNode
// and are linked without allocation, exactly as a real kernel would link
// thread control blocks. A node can be on at most one list at a time; the
// list asserts on double-insertion.

#ifndef SRC_BASE_INTRUSIVE_LIST_H_
#define SRC_BASE_INTRUSIVE_LIST_H_

#include <cassert>
#include <cstddef>

namespace fluke {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }

  void Unlink() {
    assert(linked());
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
  }
};

// Intrusive list of T, where `Member` is a pointer-to-member naming the
// embedded ListNode. Iteration order is insertion order (FIFO).
template <typename T, ListNode T::* Member>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }

  size_t size() const {
    size_t n = 0;
    for (ListNode* p = head_.next; p != &head_; p = p->next) {
      ++n;
    }
    return n;
  }

  void PushBack(T* obj) {
    ListNode* n = &(obj->*Member);
    assert(!n->linked());
    n->prev = head_.prev;
    n->next = &head_;
    head_.prev->next = n;
    head_.prev = n;
  }

  void PushFront(T* obj) {
    ListNode* n = &(obj->*Member);
    assert(!n->linked());
    n->next = head_.next;
    n->prev = &head_;
    head_.next->prev = n;
    head_.next = n;
  }

  T* Front() const { return empty() ? nullptr : FromNode(head_.next); }

  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    ListNode* n = head_.next;
    n->Unlink();
    return FromNode(n);
  }

  void Remove(T* obj) { (obj->*Member).Unlink(); }

  bool Contains(const T* obj) const {
    const ListNode* target = &(obj->*Member);
    for (ListNode* p = head_.next; p != &head_; p = p->next) {
      if (p == target) {
        return true;
      }
    }
    return false;
  }

  // Applies `fn` to every element; `fn` may not mutate the list.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (ListNode* p = head_.next; p != &head_;) {
      ListNode* next = p->next;
      fn(FromNode(p));
      p = next;
    }
  }

 private:
  static T* FromNode(ListNode* n) {
    // Standard container_of computation for a data member.
    const T* probe = nullptr;
    const auto offset =
        reinterpret_cast<const char*>(&(probe->*Member)) - reinterpret_cast<const char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset);
  }

  ListNode head_;
};

}  // namespace fluke

#endif  // SRC_BASE_INTRUSIVE_LIST_H_
