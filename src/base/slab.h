// Fixed-size slab arena for kernel objects (Thread, Port, Reference).
//
// Same shape as the frame slab in src/mem/phys.h: carve chunks, hand out
// slots from a LIFO free list, never give memory back to the host until
// process teardown. Creating the 100k-th thread of a boot storm is then one
// pointer pop instead of a malloc round trip, and bytes-per-object is a
// fixed, measurable quantity (sizeof the slot) rather than allocator-
// dependent.
//
// The simulator is single-threaded by construction (one dispatcher), so
// there is no locking. The arena is process-global rather than per-Kernel:
// class-level operator new has no kernel context, and recycling TCBs across
// short-lived test kernels is exactly what a slab is for.

#ifndef SRC_BASE_SLAB_H_
#define SRC_BASE_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fluke {

template <typename T, size_t kChunkObjects = 256>
class SlabArena {
 public:
  static SlabArena& Instance() {
    static SlabArena arena;
    return arena;
  }

  void* Allocate() {
    if (free_ == nullptr) {
      Refill();
    }
    Slot* s = free_;
    free_ = s->next;
    ++total_allocs_;
    return s;
  }

  void Deallocate(void* p) {
    Slot* s = static_cast<Slot*>(p);
    s->next = free_;
    free_ = s;
  }

  // Lifetime allocation count (process-global; the per-kernel
  // slab_thread_allocs stat is counted at CreateThread instead).
  uint64_t total_allocs() const { return total_allocs_; }
  // Bytes a live object occupies in the arena.
  static constexpr size_t kSlotBytes = sizeof(T) < sizeof(void*)
                                           ? sizeof(void*)
                                           : sizeof(T);

 private:
  union Slot {
    Slot* next;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  SlabArena() = default;

  void Refill() {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkObjects));
    Slot* base = chunks_.back().get();
    for (size_t i = kChunkObjects; i-- > 0;) {
      base[i].next = free_;
      free_ = &base[i];
    }
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  Slot* free_ = nullptr;
  uint64_t total_allocs_ = 0;
};

}  // namespace fluke

#endif  // SRC_BASE_SLAB_H_
