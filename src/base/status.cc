#include "src/base/status.h"

namespace fluke {

const char* KStatusName(KStatus s) {
  switch (s) {
    case KStatus::kOk:
      return "OK";
    case KStatus::kBlocked:
      return "BLOCKED";
    case KStatus::kPreempted:
      return "PREEMPTED";
    case KStatus::kCancelled:
      return "CANCELLED";
    case KStatus::kHardFault:
      return "HARD_FAULT";
    case KStatus::kBadHandle:
      return "BAD_HANDLE";
    case KStatus::kBadType:
      return "BAD_TYPE";
    case KStatus::kBadAddress:
      return "BAD_ADDRESS";
    case KStatus::kBadArgument:
      return "BAD_ARGUMENT";
    case KStatus::kNoMemory:
      return "NO_MEMORY";
    case KStatus::kNotConnected:
      return "NOT_CONNECTED";
    case KStatus::kAlreadyConnected:
      return "ALREADY_CONNECTED";
    case KStatus::kNoPager:
      return "NO_PAGER";
    case KStatus::kProtection:
      return "PROTECTION";
    case KStatus::kDead:
      return "DEAD";
  }
  return "UNKNOWN";
}

}  // namespace fluke
